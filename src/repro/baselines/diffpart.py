"""DiffPart: differentially private publication of set-valued data.

Re-implementation of the algorithm of Chen, Mohammed, Fung, Desai & Xiong,
"Publishing set-valued data via differential privacy" (PVLDB 2011) — the
paper's reference [6] and the differential-privacy comparator of
Figures 11a and 11c.

DiffPart performs a **top-down, context-free partitioning** guided by a
taxonomy over the domain:

1. All records start in a single partition whose *hierarchy cut* is the
   taxonomy root.
2. A partition is recursively refined by expanding one taxonomy node of its
   cut into its children; records are regrouped by which children they
   actually contain, producing one sub-partition per non-empty child
   combination.
3. Each sub-partition receives a share of the privacy budget; a noisy count
   (Laplace mechanism) decides whether it is further expanded or pruned
   (noisy count below a threshold proportional to the noise scale).
4. When a partition's cut consists of leaves only, the remaining budget is
   spent on a final noisy count and the corresponding itemset is emitted
   that many times.

The output is a plain transaction dataset containing only original terms —
like disassociation — which is what makes the tKd / re comparison of
Figure 11 meaningful.  The implementation follows the budget-allocation
strategy of the original paper (half of the budget reserved for leaf
counts, the rest spread adaptively over the taxonomy height).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.core.dataset import TransactionDataset
from repro.exceptions import ParameterError
from repro.mining.hierarchy import GeneralizationHierarchy


@dataclass
class DiffPartResult:
    """Published output of DiffPart.

    Attributes:
        dataset: the sanitized transactions (original terms only).
        epsilon: total privacy budget consumed.
        partitions_published: number of leaf partitions with a positive
            noisy count.
        partitions_pruned: number of sub-partitions cut off by the noisy
            threshold test.
    """

    dataset: TransactionDataset
    epsilon: float
    partitions_published: int
    partitions_pruned: int


class DiffPart:
    """Differentially private sanitizer for set-valued data.

    Args:
        epsilon: total privacy budget (the paper sweeps 0.5-1.25).
        hierarchy: taxonomy over the domain; a balanced hierarchy with
            ``fanout`` is built when omitted.
        fanout: fan-out of the automatically built taxonomy.
        seed: seed for the Laplace noise (reproducible runs).
    """

    def __init__(
        self,
        epsilon: float = 1.0,
        hierarchy: Optional[GeneralizationHierarchy] = None,
        fanout: int = 10,
        seed: Optional[int] = None,
    ):
        if epsilon <= 0:
            raise ParameterError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.hierarchy = hierarchy
        self.fanout = fanout
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    def publish(self, dataset: TransactionDataset) -> DiffPartResult:
        """Sanitize ``dataset`` under ``epsilon``-differential privacy."""
        hierarchy = self.hierarchy
        if hierarchy is None:
            hierarchy = GeneralizationHierarchy.balanced(dataset.domain, fanout=self.fanout)

        # Budget split as in the original algorithm: half for the final leaf
        # counts, half for the partitioning decisions, spread over the
        # taxonomy height.
        height = max(1, self._taxonomy_height(hierarchy))
        count_budget = self.epsilon / 2.0
        partition_budget_per_level = (self.epsilon / 2.0) / height

        records = [frozenset(r) for r in dataset]
        published_records: list[frozenset] = []
        published = 0
        pruned = 0

        # Each work item: (record indices, current cut as tuple of taxonomy nodes)
        stack: list[tuple[list[int], tuple]] = [(list(range(len(records))), (hierarchy.root,))]
        while stack:
            indices, cut = stack.pop()
            expandable = [node for node in cut if not hierarchy.is_leaf(node)]
            if not expandable:
                itemset = frozenset(node for node in cut if hierarchy.is_leaf(node))
                if not itemset:
                    continue
                noisy = len(indices) + self._laplace(1.0 / count_budget)
                count = int(round(noisy))
                if count > 0:
                    published += 1
                    published_records.extend([itemset] * count)
                else:
                    pruned += 1
                continue

            node = expandable[0]
            children = hierarchy.children(node)
            remaining_cut = tuple(n for n in cut if n != node)
            # Regroup records by which children of `node` they intersect.
            groups: dict[tuple, list[int]] = {}
            for index in indices:
                record = records[index]
                present = tuple(
                    sorted(
                        child
                        for child in children
                        if record & hierarchy.leaves_under(child)
                    )
                )
                groups.setdefault(present, []).append(index)

            scale = 1.0 / partition_budget_per_level
            threshold = math.sqrt(2.0) * scale
            for present, group in groups.items():
                if not present:
                    # none of the children occur: the node simply disappears
                    # from the cut for these records
                    new_cut = remaining_cut
                    if not new_cut:
                        continue
                    stack.append((group, new_cut))
                    continue
                noisy_size = len(group) + self._laplace(scale)
                if noisy_size < threshold:
                    pruned += 1
                    continue
                new_cut = tuple(sorted(remaining_cut + present))
                stack.append((group, new_cut))

        sanitized = TransactionDataset(
            (r for r in published_records if r), allow_empty=False
        )
        return DiffPartResult(
            dataset=sanitized,
            epsilon=self.epsilon,
            partitions_published=published,
            partitions_pruned=pruned,
        )

    # ------------------------------------------------------------------ #
    def _laplace(self, scale: float) -> float:
        """Sample Laplace(0, scale) noise via inverse-CDF sampling."""
        u = self._rng.random() - 0.5
        return -scale * math.copysign(1.0, u) * math.log(1.0 - 2.0 * abs(u))

    @staticmethod
    def _taxonomy_height(hierarchy: GeneralizationHierarchy) -> int:
        return max(hierarchy.level(leaf) for leaf in hierarchy.leaves)


def publish_with_diffpart(
    dataset: TransactionDataset,
    epsilon: float = 1.0,
    hierarchy: Optional[GeneralizationHierarchy] = None,
    fanout: int = 10,
    seed: Optional[int] = None,
) -> DiffPartResult:
    """Functional wrapper around :class:`DiffPart`."""
    return DiffPart(epsilon=epsilon, hierarchy=hierarchy, fanout=fanout, seed=seed).publish(dataset)

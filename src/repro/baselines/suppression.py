"""Global-suppression k^m-anonymity baseline.

The related-work section of the paper discusses suppression-based
approaches (Burghardt et al., TDP 2011; reference [4]): k^m-anonymity can
also be achieved simply by *removing* every term that participates in an
infrequent combination.  This preserves original terms (no generalization),
but because sparse query-log domains have a very long support tail, it ends
up deleting the vast majority of the vocabulary — the paper cites ~90% term
loss even for small ``k`` and ``m``.  We implement it as an additional
comparator and for ablation benches.

The greedy strategy: repeatedly find the term that participates in most
remaining violating combinations (of size up to ``m``) and suppress it
everywhere, until the dataset is k^m-anonymous.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.anonymity import validate_km_parameters
from repro.core.dataset import TransactionDataset
from repro.mining.itemsets import itemset_supports


@dataclass
class SuppressionResult:
    """Output of suppression-based anonymization.

    Attributes:
        dataset: the published dataset (records with suppressed terms
            removed; records that became empty are dropped).
        suppressed_terms: the globally removed terms.
        k, m: the guarantee parameters the output satisfies.
    """

    dataset: TransactionDataset
    suppressed_terms: frozenset
    k: int
    m: int

    @property
    def term_loss(self) -> float:
        """Fraction of the original domain that was suppressed."""
        original = len(self.suppressed_terms) + len(self.dataset.domain)
        if original == 0:
            return 0.0
        return len(self.suppressed_terms) / original


class GlobalSuppressor:
    """Greedy global-suppression k^m-anonymizer.

    Args:
        k, m: anonymity parameters.
    """

    def __init__(self, k: int = 5, m: int = 2):
        validate_km_parameters(k, m)
        self.k = k
        self.m = m

    def anonymize(self, dataset: TransactionDataset) -> SuppressionResult:
        """Suppress terms until every combination of up to ``m`` terms that
        still occurs does so at least ``k`` times."""
        current = dataset
        suppressed: set = set()
        while True:
            violations = self._violating_combinations(current)
            if not violations:
                break
            involvement: Counter = Counter()
            for combo, _support in violations.items():
                involvement.update(combo)
            # Suppress the term participating in the most violations; break
            # ties toward the globally rarer term (cheaper to lose).
            supports = current.term_supports()
            victim = max(
                involvement,
                key=lambda term: (involvement[term], -supports[term], term),
            )
            suppressed.add(victim)
            current = current.without_terms({victim})
            if len(current) == 0:
                break
        return SuppressionResult(
            dataset=current,
            suppressed_terms=frozenset(suppressed),
            k=self.k,
            m=self.m,
        )

    def _violating_combinations(self, dataset: TransactionDataset) -> dict:
        counts = itemset_supports(dataset, max_size=self.m)
        return {combo: s for combo, s in counts.items() if s < self.k}


def anonymize_with_suppression(
    dataset: TransactionDataset, k: int = 5, m: int = 2
) -> SuppressionResult:
    """Functional wrapper around :class:`GlobalSuppressor`."""
    return GlobalSuppressor(k=k, m=m).anonymize(dataset)

"""Baseline anonymization methods the paper compares against.

* :mod:`repro.baselines.apriori_anonymization` -- generalization-based
  k^m-anonymity (Terrovitis et al. 2008), used in Figure 11b.
* :mod:`repro.baselines.diffpart` -- DiffPart differential privacy for
  set-valued data (Chen et al. 2011), used in Figures 11a and 11c.
* :mod:`repro.baselines.suppression` -- greedy global suppression
  (Burghardt et al. 2011 style), an additional comparator.
"""

from repro.baselines.apriori_anonymization import (
    AprioriAnonymizer,
    GeneralizedDataset,
    anonymize_with_generalization,
)
from repro.baselines.diffpart import DiffPart, DiffPartResult, publish_with_diffpart
from repro.baselines.suppression import (
    GlobalSuppressor,
    SuppressionResult,
    anonymize_with_suppression,
)

__all__ = [
    "AprioriAnonymizer",
    "DiffPart",
    "DiffPartResult",
    "GeneralizedDataset",
    "GlobalSuppressor",
    "SuppressionResult",
    "anonymize_with_generalization",
    "anonymize_with_suppression",
    "publish_with_diffpart",
]

"""Generalization-based k^m-anonymity baseline (Apriori anonymization).

Re-implementation of the *AA* (Apriori-based Anonymization) approach of
Terrovitis, Mamoulis & Kalnis, "Privacy-preserving anonymization of
set-valued data" (PVLDB 2008) — the paper's reference [27] and the
generalization comparator of Figure 11b.

The algorithm maintains a *generalization cut*: an anti-chain of hierarchy
nodes covering the whole domain; every original term is recoded to the cut
node above it (global recoding).  Working bottom-up on itemset sizes
``i = 1..m``, it repeatedly finds combinations of ``i`` generalized terms
that occur in the data with support below ``k`` and climbs the cut — one
sibling group at a time, preferring the cheapest climb in NCP terms — until
no violation remains.  The procedure always terminates because the cut
eventually reaches the hierarchy root, where a single generalized term
remains and every combination has full support.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional

from repro.core.anonymity import validate_km_parameters
from repro.core.dataset import TransactionDataset
from repro.mining.hierarchy import GeneralizationHierarchy


@dataclass
class GeneralizedDataset:
    """Result of generalization-based anonymization.

    Attributes:
        dataset: the published transactions (records of generalized terms).
        cut: mapping from every original term to the node it is recoded to.
        hierarchy: the hierarchy the cut lives in.
        k, m: the guarantee parameters the dataset satisfies.
    """

    dataset: TransactionDataset
    cut: dict
    hierarchy: GeneralizationHierarchy
    k: int
    m: int

    def generalization_levels(self) -> Counter:
        """How many original terms are published at each hierarchy node."""
        return Counter(self.cut.values())

    def ncp(self) -> float:
        """Average NCP of the published terms (0 = originals, 1 = root)."""
        if not self.cut:
            return 0.0
        return sum(self.hierarchy.ncp(node) for node in self.cut.values()) / len(self.cut)


@dataclass
class AprioriAnonymizer:
    """Generalization-based k^m-anonymizer (global recoding over a hierarchy).

    Attributes:
        k, m: anonymity parameters (same semantics as disassociation).
        hierarchy: generalization hierarchy; when ``None`` a balanced
            hierarchy with ``fanout`` is built over the dataset domain.
        fanout: fan-out of the automatically built hierarchy.
        max_rounds: safety cap on generalization rounds per itemset size.
    """

    k: int = 5
    m: int = 2
    hierarchy: Optional[GeneralizationHierarchy] = None
    fanout: int = 4
    max_rounds: int = 10_000
    _last_rounds: int = field(default=0, repr=False)

    def anonymize(self, dataset: TransactionDataset) -> GeneralizedDataset:
        """Anonymize ``dataset`` and return the generalized publication."""
        validate_km_parameters(self.k, self.m)
        hierarchy = self.hierarchy
        if hierarchy is None:
            hierarchy = GeneralizationHierarchy.balanced(dataset.domain, fanout=self.fanout)
        cut = {term: term for term in map(str, dataset.domain)}

        rounds = 0
        for size in range(1, self.m + 1):
            while rounds < self.max_rounds:
                rounds += 1
                generalized = self._apply_cut(dataset, cut)
                violations = self._find_violations(generalized, size)
                if not violations:
                    break
                target = self._choose_generalization_target(violations, hierarchy, cut)
                if target is None:
                    break
                self._climb(cut, hierarchy, target)
        self._last_rounds = rounds

        published = self._apply_cut(dataset, cut)
        return GeneralizedDataset(
            dataset=published, cut=dict(cut), hierarchy=hierarchy, k=self.k, m=self.m
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _apply_cut(dataset: TransactionDataset, cut: dict) -> TransactionDataset:
        return TransactionDataset(
            (frozenset(cut.get(term, term) for term in record) for record in dataset),
            allow_empty=False,
        )

    def _find_violations(self, dataset: TransactionDataset, size: int) -> Counter:
        """Combinations of ``size`` generalized terms with 0 < support < k."""
        counts: Counter = Counter()
        for record in dataset:
            if len(record) < size:
                continue
            for combo in combinations(sorted(record), size):
                counts[combo] += 1
        return Counter({combo: s for combo, s in counts.items() if s < self.k})

    @staticmethod
    def _choose_generalization_target(
        violations: Counter, hierarchy: GeneralizationHierarchy, cut: dict
    ) -> Optional[str]:
        """Pick the cut node to climb: the one involved in most violations,
        breaking ties toward the cheaper (smaller-NCP) climb."""
        involvement: Counter = Counter()
        for combo, _support in violations.items():
            involvement.update(combo)
        candidates = [
            node for node in involvement if hierarchy.parent(node) is not None
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda node: (involvement[node], -hierarchy.ncp(node), node),
        )

    @staticmethod
    def _climb(cut: dict, hierarchy: GeneralizationHierarchy, node: str) -> None:
        """Generalize ``node`` to its parent.

        Global recoding: every term whose current cut node lies inside the
        parent's subtree is recoded to the parent, so the cut stays an
        anti-chain covering the domain.
        """
        parent = hierarchy.parent(node)
        if parent is None:
            return
        for term, current in cut.items():
            if hierarchy.is_ancestor(parent, current):
                cut[term] = parent


def anonymize_with_generalization(
    dataset: TransactionDataset,
    k: int = 5,
    m: int = 2,
    hierarchy: Optional[GeneralizationHierarchy] = None,
    fanout: int = 4,
) -> GeneralizedDataset:
    """Functional wrapper around :class:`AprioriAnonymizer`."""
    return AprioriAnonymizer(k=k, m=m, hierarchy=hierarchy, fanout=fanout).anonymize(dataset)

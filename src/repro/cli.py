"""Command-line interface: ``repro`` (alias ``repro-anon``).

Sub-commands:

* ``anonymize``   -- disassociate a dataset file (transactions or JSONL) and
  write the published JSON (clusters, chunks, parameters).  With
  ``--stream`` the file is processed by the sharded streaming pipeline
  under a bounded memory budget (``--shards``,
  ``--max-records-in-memory``).  With ``--store-dir`` the run is a
  *delta* of a persistent incremental store: the input (or ``--append``)
  is appended, ``--delete`` records are removed, only the changed
  windows are re-anonymized, and the written publication is bit-for-bit
  what a cold run over the mutated dataset would produce.
* ``reconstruct`` -- sample a reconstructed dataset from a published JSON.
* ``evaluate``    -- compute the paper's information-loss metrics between an
  original transaction file and a published JSON.
* ``generate``    -- produce a synthetic dataset (Quest model, Zipf basket,
  click-stream, or a POS/WV1/WV2 proxy) as a transaction file.
* ``audit``       -- independently re-check the k^m-anonymity of a published
  JSON.
* ``query``       -- answer one analysis query (``top_terms``,
  ``cooccurrence_count``, ``frequent_pairs``, ``expected_support``, ...)
  from an indexed :class:`~repro.pubstore.PublicationStore` directory
  (``--store``) or, identically, from a published JSON (``--publication``).
* ``serve``       -- run the HTTP front door: a long-lived multi-worker
  :class:`~repro.service.AnonymizationService` behind ``POST /anonymize``,
  ``GET /jobs/<id>``, ``GET /stats``, ``GET /healthz`` and (with
  ``--pubstore-dir``) ``GET`` / ``POST /query`` (see
  ``docs/OPERATIONS.md`` for deployment guidance).

Examples::

    repro generate --profile POS --scale 0.01 --output pos.txt
    repro anonymize pos.txt --k 5 --m 2 --output pos.published.json
    repro anonymize huge.jsonl --stream --shards 8 --jobs 4 \\
        --max-records-in-memory 20000 --output huge.published.json
    repro anonymize day1.txt --store-dir ./store --output pub.json
    repro anonymize day2.txt --store-dir ./store --delete churned.txt \\
        --output pub.json
    repro anonymize pos.txt --k 5 --m 2 --output pub.json --pubstore-dir ./pub
    repro query top_terms --store ./pub --count 10
    repro query expected_support --store ./pub --terms beer diapers
    repro evaluate pos.txt pos.published.json
    repro reconstruct pos.published.json --seed 3 --output world.txt
    repro serve --port 8350 --workers 2 --max-pending 64
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.reconstruct import Reconstructor
from repro.core.verification import audit
from repro.datasets.io import (
    read_disassociated_json,
    read_records,
    write_transactions,
)
from repro.datasets.quest import generate_quest
from repro.datasets.real_proxies import available_datasets, load_proxy
from repro.datasets.scenarios import SCENARIOS
from repro.exceptions import ReproError
from repro.experiments.harness import ExperimentConfig, evaluate as evaluate_metrics
from repro.pubstore import QUERY_OPS
from repro.service import AnonymizationRequest, AnonymizationService, ServiceConfig
from repro.service.http import DEFAULT_HOST, DEFAULT_PORT, ServiceHTTPServer
from repro.stream import DEFAULT_MAX_RECORDS_IN_MEMORY, DEFAULT_SHARDS, STRATEGIES


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-anon",
        description="Disassociation-based k^m-anonymization for set-valued data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    anonymize = subparsers.add_parser("anonymize", help="disassociate a dataset file")
    anonymize.add_argument(
        "input",
        nargs="?",
        default=None,
        help="dataset file (transactions or .jsonl, sniffed from extension); "
        "with --store-dir it holds the records to append, and may be "
        "omitted for a delete-only or no-op delta",
    )
    anonymize.add_argument("--output", required=True, help="published JSON path")
    anonymize.add_argument("--k", type=int, default=5)
    anonymize.add_argument("--m", type=int, default=2)
    anonymize.add_argument("--max-cluster-size", type=int, default=30)
    anonymize.add_argument("--no-refine", action="store_true", help="skip the REFINE step")
    anonymize.add_argument(
        "--backend",
        choices=["encoded", "string"],
        default="encoded",
        help="execution core: interned/bitset fast path (default) or the string reference",
    )
    anonymize.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-cluster VERPART fan-out (encoded backend)",
    )
    anonymize.add_argument(
        "--kernels",
        choices=["auto", "python", "numpy"],
        default=None,
        help="vectorized-kernel backend for the encoded core: 'numpy' "
        "(vectorized counting/checking, needs numpy >= 2.0), 'python' "
        "(pure-Python fallback) or 'auto' (numpy when importable). "
        "Omitted: $REPRO_KERNELS, then auto. Identical output either way",
    )
    anonymize.add_argument(
        "--stream",
        action="store_true",
        help="sharded streaming mode: bounded-memory anonymization of files "
        "too large for one pass, with a global cross-shard verification pass",
    )
    anonymize.add_argument(
        "--shards",
        type=int,
        default=DEFAULT_SHARDS,
        help=f"number of shards in --stream mode (default {DEFAULT_SHARDS})",
    )
    anonymize.add_argument(
        "--max-records-in-memory",
        type=int,
        default=DEFAULT_MAX_RECORDS_IN_MEMORY,
        help="bound on resident records in --stream mode: planner sample, "
        "spill buffers and per-shard windows all stay under this "
        f"(default {DEFAULT_MAX_RECORDS_IN_MEMORY})",
    )
    anonymize.add_argument(
        "--shard-strategy",
        choices=list(STRATEGIES),
        default="hash",
        help="record routing: 'hash' (balanced, data-oblivious) or 'horpart' "
        "(groups similar records per shard for better utility)",
    )
    anonymize.add_argument(
        "--spill-dir",
        default=None,
        help="directory for --stream spill files; setting it also enables "
        "durable checkpointing (manifest + per-shard snapshots) there, so "
        "a crashed run can be finished with --resume",
    )
    anonymize.add_argument(
        "--resume",
        action="store_true",
        help="resume a crashed checkpointed run from the manifest in "
        "--spill-dir instead of starting over (requires --stream and "
        "--spill-dir; completed shards are loaded, not re-run)",
    )
    anonymize.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="abort the run with an error if it exceeds this many seconds "
        "(checked at pipeline phase boundaries)",
    )
    anonymize.add_argument(
        "--store-dir",
        default=None,
        help="persistent incremental store directory: the run becomes a "
        "delta of the store (appending the input and/or applying "
        "--delete) and writes the full publication of the mutated "
        "dataset, bit-for-bit what a cold run over it would produce",
    )
    anonymize.add_argument(
        "--append",
        default=None,
        metavar="FILE",
        help="records to append to the store (alternative to the input "
        "positional; requires --store-dir)",
    )
    anonymize.add_argument(
        "--delete",
        default=None,
        metavar="FILE",
        help="records to delete from the store (earliest surviving "
        "occurrence of each; requires --store-dir)",
    )
    anonymize.add_argument(
        "--delta-id",
        default=None,
        metavar="TOKEN",
        help="idempotency token for the --store-dir delta: the store "
        "commits a mutation at most once per token, so re-running a "
        "crashed delta with the same --delta-id can never apply it "
        "twice (requires --store-dir; pick a fresh token per logical "
        "delta)",
    )
    anonymize.add_argument(
        "--pubstore-dir",
        default=None,
        metavar="DIR",
        help="also persist the publication as an indexed query store "
        "there (see 'repro query'); with --store-dir the incremental "
        "pipeline keeps the store's indexes in sync on every delta",
    )

    reconstruct = subparsers.add_parser(
        "reconstruct", help="sample a reconstructed dataset from a published JSON"
    )
    reconstruct.add_argument("input", help="published JSON path")
    reconstruct.add_argument("--output", required=True, help="transaction file to write")
    reconstruct.add_argument("--seed", type=int, default=0)

    evaluate = subparsers.add_parser(
        "evaluate", help="information-loss metrics of a publication"
    )
    evaluate.add_argument("original", help="original transaction file")
    evaluate.add_argument("published", help="published JSON path")
    evaluate.add_argument("--top-k", type=int, default=100)
    evaluate.add_argument("--seed", type=int, default=0)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("--output", required=True, help="transaction file to write")
    generate.add_argument(
        "--profile",
        choices=available_datasets() + ["QUEST"] + sorted(SCENARIOS),
        default="QUEST",
        help="real-dataset proxy profile, QUEST for the generic generator, "
        "or a synthetic scenario (ZIPF market basket, CLICKSTREAM sessions)",
    )
    generate.add_argument("--records", type=int, default=5000)
    generate.add_argument("--domain", type=int, default=1000)
    generate.add_argument("--avg-length", type=float, default=10.0)
    generate.add_argument("--scale", type=float, default=0.01, help="proxy scale factor")
    generate.add_argument("--seed", type=int, default=0)

    audit_cmd = subparsers.add_parser("audit", help="re-check a published JSON")
    audit_cmd.add_argument("input", help="published JSON path")

    query = subparsers.add_parser(
        "query", help="answer an analysis query from a publication store"
    )
    query.add_argument(
        "op",
        choices=list(QUERY_OPS),
        help="the query operation (see repro.pubstore.QueryEngine)",
    )
    query.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="publication store directory (indexed; built by "
        "--pubstore-dir or PublicationResult.save_store)",
    )
    query.add_argument(
        "--publication",
        default=None,
        metavar="FILE",
        help="published JSON to answer from in memory instead of a store "
        "(same answers, bit for bit; no index build needed)",
    )
    query.add_argument(
        "--terms", nargs="+", default=None, metavar="TERM", help="itemset terms"
    )
    query.add_argument(
        "--antecedent",
        nargs="+",
        default=None,
        metavar="TERM",
        help="rule antecedent terms (rule_confidence)",
    )
    query.add_argument(
        "--consequent",
        nargs="+",
        default=None,
        metavar="TERM",
        help="rule consequent terms (rule_confidence)",
    )
    query.add_argument(
        "--count", type=int, default=None, help="result count for top_terms"
    )
    query.add_argument(
        "--min-support",
        type=int,
        default=None,
        help="support threshold for frequent_pairs",
    )
    query.add_argument(
        "--reconstructions",
        type=int,
        default=None,
        help="reconstructed worlds to average (reconstructed_support)",
    )
    query.add_argument(
        "--seed",
        type=int,
        default=None,
        help="random seed for reconstructed_support",
    )

    serve = subparsers.add_parser(
        "serve", help="serve anonymization requests over HTTP (the front door)"
    )
    serve.add_argument("--host", default=DEFAULT_HOST, help="bind address")
    serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="service worker threads (each with its own warm engine); "
        "defaults to $REPRO_SERVICE_WORKERS, then 1",
    )
    serve.add_argument("--k", type=int, default=None)
    serve.add_argument("--m", type=int, default=None)
    serve.add_argument("--max-cluster-size", type=int, default=None)
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="per-engine worker processes for the VERPART/REFINE fan-outs",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="job-queue bound; beyond it POST /anonymize answers 429",
    )
    serve.add_argument(
        "--kernels", choices=["auto", "python", "numpy"], default=None
    )
    serve.add_argument(
        "--pubstore-dir",
        default=None,
        metavar="DIR",
        help="publication store directory answering GET/POST /query "
        "(defaults to $REPRO_SERVICE_PUBSTORE_DIR)",
    )
    serve.add_argument(
        "--no-drain",
        action="store_true",
        help="on shutdown, cancel queued jobs instead of draining them",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )
    return parser


def _cmd_anonymize(args) -> int:
    # The CLI is a one-request caller of the same service facade that
    # long-lived deployments hold open; --stream simply forces the routing
    # the service would otherwise decide from input size.
    if args.resume and not (args.stream and args.spill_dir):
        print(
            "error: --resume requires --stream and --spill-dir (only "
            "checkpointed streaming runs leave a manifest to resume from)",
            file=sys.stderr,
        )
        return 2
    if args.store_dir is None:
        if args.append or args.delete:
            print(
                "error: --append/--delete mutate a persistent store and "
                "require --store-dir",
                file=sys.stderr,
            )
            return 2
        if args.delta_id:
            print(
                "error: --delta-id is the idempotency token of a store "
                "delta and requires --store-dir",
                file=sys.stderr,
            )
            return 2
        if args.input is None:
            print("error: an input dataset file is required", file=sys.stderr)
            return 2
    else:
        if args.resume:
            print(
                "error: --store-dir runs are incremental, not resumed "
                "checkpoint runs; drop --resume (to recover an interrupted "
                "delta, re-run it with the same --delta-id, or run a "
                "reconcile-only delta -- no input/--append/--delete -- "
                "which finishes stale windows without mutating anything)",
                file=sys.stderr,
            )
            return 2
        if args.input is not None and args.append is not None:
            print(
                "error: give the records to append either as the input "
                "positional or as --append, not both",
                file=sys.stderr,
            )
            return 2
    config = ServiceConfig(
        k=args.k,
        m=args.m,
        max_cluster_size=args.max_cluster_size,
        refine=not args.no_refine,
        backend=args.backend,
        jobs=args.jobs,
        kernels=args.kernels,
        shards=args.shards,
        max_records_in_memory=args.max_records_in_memory,
        shard_strategy=args.shard_strategy,
        spill_dir=args.spill_dir,
        store_dir=args.store_dir,
        pubstore_dir=args.pubstore_dir,
    )
    if args.store_dir is not None:
        request = AnonymizationRequest(
            args.input if args.input is not None else args.append,
            mode="delta",
            deadline=args.deadline,
            delete=args.delete,
            delta_id=args.delta_id,
        )
    else:
        request = AnonymizationRequest(
            args.input,
            mode="stream" if args.stream else "batch",
            deadline=args.deadline,
            resume=args.resume,
        )
    with AnonymizationService(config) as service:
        result = service.run(request)
    result.save(args.output)
    if args.pubstore_dir is not None and args.store_dir is None:
        # Delta runs already refreshed the store inside the pipeline
        # (generation-stamped); batch/stream runs persist it here.
        result.save_store(args.pubstore_dir).close()
    print(result.summary())
    return 0


def _cmd_reconstruct(args) -> int:
    published = read_disassociated_json(args.input)
    world = Reconstructor(published, seed=args.seed).reconstruct()
    write_transactions(world, args.output)
    print(f"wrote {len(world)} reconstructed records to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    original = read_records(args.original)
    published = read_disassociated_json(args.published)
    config = ExperimentConfig(
        k=published.k, m=published.m, top_k=args.top_k, seed=args.seed
    )
    metrics = evaluate_metrics(original, published, config)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    return 0


def _cmd_generate(args) -> int:
    if args.profile == "QUEST":
        dataset = generate_quest(
            num_transactions=args.records,
            domain_size=args.domain,
            avg_transaction_size=args.avg_length,
            seed=args.seed,
        )
    elif args.profile == "ZIPF":
        dataset = SCENARIOS["ZIPF"](
            num_transactions=args.records,
            domain_size=args.domain,
            avg_basket_size=args.avg_length,
            seed=args.seed,
        )
    elif args.profile == "CLICKSTREAM":
        dataset = SCENARIOS["CLICKSTREAM"](
            num_sessions=args.records,
            num_pages=args.domain,
            avg_session_length=args.avg_length,
            seed=args.seed,
        )
    else:
        dataset = load_proxy(args.profile, scale=args.scale, seed=args.seed)
    write_transactions(dataset, args.output)
    stats = dataset.stats()
    print(f"wrote {stats.num_records} records ({stats.as_row()}) to {args.output}")
    return 0


def _cmd_audit(args) -> int:
    published = read_disassociated_json(args.input)
    report = audit(published)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_query(args) -> int:
    from repro.pubstore import PublicationStore, QueryEngine

    if (args.store is None) == (args.publication is None):
        print(
            "error: give exactly one source: --store DIR (indexed) or "
            "--publication FILE (in-memory)",
            file=sys.stderr,
        )
        return 2
    params = {
        name: value
        for name, value in [
            ("terms", args.terms),
            ("antecedent", args.antecedent),
            ("consequent", args.consequent),
            ("count", args.count),
            ("min_support", args.min_support),
            ("reconstructions", args.reconstructions),
        ]
        if value is not None
    }
    if args.store is not None:
        with PublicationStore(args.store) as store:
            payload = QueryEngine(store, seed=args.seed).execute(args.op, params)
    else:
        published = read_disassociated_json(args.publication)
        payload = QueryEngine(published, seed=args.seed).execute(args.op, params)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _serve_config(args) -> ServiceConfig:
    # Environment first (REPRO_SERVICE_*), explicit flags override: the
    # same precedence every 12-factor deployment expects.
    config = ServiceConfig.from_env()
    overrides = {
        name: value
        for name, value in [
            ("workers", args.workers),
            ("k", args.k),
            ("m", args.m),
            ("max_cluster_size", args.max_cluster_size),
            ("jobs", args.jobs),
            ("max_pending", args.max_pending),
            ("kernels", args.kernels),
            ("pubstore_dir", args.pubstore_dir),
        ]
        if value is not None
    }
    return config.with_overrides(**overrides) if overrides else config


def _cmd_serve(args) -> int:
    config = _serve_config(args)
    drain = not args.no_drain
    service = AnonymizationService(config)
    server = ServiceHTTPServer(
        service, args.host, args.port, quiet=not args.verbose
    )
    print(
        f"repro serve: listening on {server.url} "
        f"(workers={config.workers}, jobs={config.jobs}, "
        f"max_pending={config.max_pending}, k={config.k}, m={config.m})"
    )
    endpoints = "POST /anonymize, GET /jobs/<id>, GET /stats, GET /healthz"
    if config.pubstore_dir is not None:
        endpoints += ", GET/POST /query"
    print(f"endpoints: {endpoints}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print(f"\nshutting down ({'draining' if drain else 'cancelling'} queued jobs)")
    finally:
        server.close(drain=drain)
    return 0


_COMMANDS = {
    "anonymize": _cmd_anonymize,
    "reconstruct": _cmd_reconstruct,
    "evaluate": _cmd_evaluate,
    "generate": _cmd_generate,
    "audit": _cmd_audit,
    "query": _cmd_query,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-anon`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``repro-anon``.

Sub-commands:

* ``anonymize``   -- disassociate a transaction file and write the published
  JSON (clusters, chunks, parameters).
* ``reconstruct`` -- sample a reconstructed dataset from a published JSON.
* ``evaluate``    -- compute the paper's information-loss metrics between an
  original transaction file and a published JSON.
* ``generate``    -- produce a synthetic dataset (Quest model or a POS/WV1/WV2
  proxy) as a transaction file.
* ``audit``       -- independently re-check the k^m-anonymity of a published
  JSON.

Examples::

    repro-anon generate --profile POS --scale 0.01 --output pos.txt
    repro-anon anonymize pos.txt --k 5 --m 2 --output pos.published.json
    repro-anon evaluate pos.txt pos.published.json
    repro-anon reconstruct pos.published.json --seed 3 --output world.txt
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.engine import AnonymizationParams, Disassociator
from repro.core.reconstruct import Reconstructor
from repro.core.verification import audit
from repro.datasets.io import (
    read_disassociated_json,
    read_transactions,
    write_disassociated_json,
    write_transactions,
)
from repro.datasets.quest import generate_quest
from repro.datasets.real_proxies import available_datasets, load_proxy
from repro.exceptions import ReproError
from repro.experiments.harness import ExperimentConfig, evaluate as evaluate_metrics


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-anon",
        description="Disassociation-based k^m-anonymization for set-valued data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    anonymize = subparsers.add_parser("anonymize", help="disassociate a transaction file")
    anonymize.add_argument("input", help="transaction file (one record per line)")
    anonymize.add_argument("--output", required=True, help="published JSON path")
    anonymize.add_argument("--k", type=int, default=5)
    anonymize.add_argument("--m", type=int, default=2)
    anonymize.add_argument("--max-cluster-size", type=int, default=30)
    anonymize.add_argument("--no-refine", action="store_true", help="skip the REFINE step")
    anonymize.add_argument(
        "--backend",
        choices=["encoded", "string"],
        default="encoded",
        help="execution core: interned/bitset fast path (default) or the string reference",
    )
    anonymize.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-cluster VERPART fan-out (encoded backend)",
    )

    reconstruct = subparsers.add_parser(
        "reconstruct", help="sample a reconstructed dataset from a published JSON"
    )
    reconstruct.add_argument("input", help="published JSON path")
    reconstruct.add_argument("--output", required=True, help="transaction file to write")
    reconstruct.add_argument("--seed", type=int, default=0)

    evaluate = subparsers.add_parser(
        "evaluate", help="information-loss metrics of a publication"
    )
    evaluate.add_argument("original", help="original transaction file")
    evaluate.add_argument("published", help="published JSON path")
    evaluate.add_argument("--top-k", type=int, default=100)
    evaluate.add_argument("--seed", type=int, default=0)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("--output", required=True, help="transaction file to write")
    generate.add_argument(
        "--profile",
        choices=available_datasets() + ["QUEST"],
        default="QUEST",
        help="real-dataset proxy profile or QUEST for the generic generator",
    )
    generate.add_argument("--records", type=int, default=5000)
    generate.add_argument("--domain", type=int, default=1000)
    generate.add_argument("--avg-length", type=float, default=10.0)
    generate.add_argument("--scale", type=float, default=0.01, help="proxy scale factor")
    generate.add_argument("--seed", type=int, default=0)

    audit_cmd = subparsers.add_parser("audit", help="re-check a published JSON")
    audit_cmd.add_argument("input", help="published JSON path")
    return parser


def _cmd_anonymize(args) -> int:
    dataset = read_transactions(args.input)
    params = AnonymizationParams(
        k=args.k,
        m=args.m,
        max_cluster_size=args.max_cluster_size,
        refine=not args.no_refine,
        backend=args.backend,
        jobs=args.jobs,
    )
    engine = Disassociator(params)
    published = engine.anonymize(dataset)
    write_disassociated_json(published, args.output)
    report = engine.last_report
    print(
        f"anonymized {report.num_records} records into {report.num_clusters} clusters "
        f"({report.num_record_chunks} record chunks, {report.num_shared_chunks} shared chunks) "
        f"in {report.total_seconds:.2f}s"
    )
    return 0


def _cmd_reconstruct(args) -> int:
    published = read_disassociated_json(args.input)
    world = Reconstructor(published, seed=args.seed).reconstruct()
    write_transactions(world, args.output)
    print(f"wrote {len(world)} reconstructed records to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    original = read_transactions(args.original)
    published = read_disassociated_json(args.published)
    config = ExperimentConfig(
        k=published.k, m=published.m, top_k=args.top_k, seed=args.seed
    )
    metrics = evaluate_metrics(original, published, config)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    return 0


def _cmd_generate(args) -> int:
    if args.profile == "QUEST":
        dataset = generate_quest(
            num_transactions=args.records,
            domain_size=args.domain,
            avg_transaction_size=args.avg_length,
            seed=args.seed,
        )
    else:
        dataset = load_proxy(args.profile, scale=args.scale, seed=args.seed)
    write_transactions(dataset, args.output)
    stats = dataset.stats()
    print(f"wrote {stats.num_records} records ({stats.as_row()}) to {args.output}")
    return 0


def _cmd_audit(args) -> int:
    published = read_disassociated_json(args.input)
    report = audit(published)
    print(report.summary())
    return 0 if report.ok else 1


_COMMANDS = {
    "anonymize": _cmd_anonymize,
    "reconstruct": _cmd_reconstruct,
    "evaluate": _cmd_evaluate,
    "generate": _cmd_generate,
    "audit": _cmd_audit,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-anon`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Request-level observability for the anonymization service.

The service records, for every request it executes (synchronous ``run()``
calls and queued ``submit()`` jobs alike):

* end-to-end **request latency** and, for queued jobs, the **queue wait**
  (enqueue -> execution start), both into fixed-bucket
  :class:`LatencyHistogram`\\ s with exact tail percentiles over a bounded
  window of recent observations;
* **per-phase wall time** (horizontal / vertical / refine / verify for
  batch runs, plan / shard / anonymize / merge / verify for streamed
  ones), accumulated from each run's report;
* **worker utilization**: per-worker busy seconds against the service's
  own lifetime, plus in-flight and saturation counters;
* **failure accounting**: transient retries, deadline expiries, exhausted
  retry budgets and crashed-engine rebuilds (the ``failures`` section of
  the snapshot), so an operator can tell a saturated service from a dying
  one at a glance.

Everything is aggregated in one :class:`ServiceMetrics` object behind a
single lock -- observation is a few dict updates, orders of magnitude
cheaper than the requests being measured -- and snapshotted by
:meth:`ServiceMetrics.snapshot`, which backs both
:meth:`AnonymizationService.stats() <repro.service.AnonymizationService.stats>`
and the HTTP front door's ``GET /stats`` endpoint (same payload on both
paths, by construction).
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Optional

#: Histogram bucket upper bounds in seconds (log-ish scale, heads for the
#: millisecond-to-minute range an anonymization request can span).  The
#: implicit final bucket is ``+Inf``.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)

#: Recent observations kept per histogram for exact percentile estimates.
DEFAULT_WINDOW = 1024


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact windowed percentiles.

    Bucket counts are cumulative-friendly (each bucket counts observations
    ``<= bound``, Prometheus style) and never reset; percentiles are
    computed exactly over the last :data:`DEFAULT_WINDOW` observations, so
    ``p99`` reflects recent traffic instead of the whole deployment
    lifetime.  Not thread-safe by itself -- :class:`ServiceMetrics` guards
    every histogram with its one lock.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max", "_window")

    def __init__(self, bounds=DEFAULT_BUCKETS, window: int = DEFAULT_WINDOW):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._window: deque = deque(maxlen=window)

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds
        self._window.append(seconds)

    def percentile(self, quantile: float) -> Optional[float]:
        """Exact ``quantile`` (0..1) over the recent-observation window."""
        if not self._window:
            return None
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, max(0, round(quantile * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        """JSON-safe summary: count/sum/min/mean/max, p50/p90/p99, buckets."""
        mean = (self.sum / self.count) if self.count else None
        buckets = {}
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            buckets[f"le_{bound:g}"] = cumulative
        buckets["le_inf"] = cumulative + self.counts[-1]
        return {
            "count": self.count,
            "sum_seconds": self.sum,
            "min_seconds": self.min,
            "mean_seconds": mean,
            "max_seconds": self.max,
            "p50_seconds": self.percentile(0.50),
            "p90_seconds": self.percentile(0.90),
            "p99_seconds": self.percentile(0.99),
            "buckets": buckets,
        }


class ServiceMetrics:
    """Aggregated request/queue/worker metrics for one service instance.

    One lock guards all mutation; :meth:`snapshot` produces the JSON-safe
    dict embedded into ``service.stats()`` (and therefore ``GET /stats``).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self.request_latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self._requests_completed = 0
        self._requests_failed = 0
        self._in_flight = 0
        self._by_mode = {"batch": 0, "stream": 0}
        self._jobs_submitted = 0
        self._jobs_cancelled = 0
        self._rejected_saturated = 0
        self._retries = 0
        self._deadline_exceeded = 0
        self._retries_exhausted = 0
        self._engines_rebuilt = 0
        self._queries = 0
        self.query_latency = LatencyHistogram()
        self._phase_seconds: dict[str, float] = {}
        self._worker_busy: dict[str, float] = {}

    # -- recording ------------------------------------------------------- #
    def request_started(self) -> None:
        """A request entered execution (sync call or dequeued job)."""
        with self._lock:
            self._in_flight += 1

    def request_finished(
        self,
        *,
        seconds: float,
        mode: Optional[str],
        error: bool,
        queue_wait: Optional[float] = None,
        worker: Optional[str] = None,
        phase_timings: Optional[dict] = None,
    ) -> None:
        """A request left execution; fold its latency/phases/attribution in."""
        with self._lock:
            self._in_flight -= 1
            if error:
                self._requests_failed += 1
            else:
                self._requests_completed += 1
                if mode in self._by_mode:
                    self._by_mode[mode] += 1
            self.request_latency.observe(seconds)
            if queue_wait is not None:
                self.queue_wait.observe(queue_wait)
            if worker is not None:
                self._worker_busy[worker] = self._worker_busy.get(worker, 0.0) + seconds
            if phase_timings:
                for phase, value in phase_timings.items():
                    if phase == "total_seconds":
                        continue
                    self._phase_seconds[phase] = (
                        self._phase_seconds.get(phase, 0.0) + value
                    )

    def job_submitted(self) -> None:
        """A job was accepted onto the queue."""
        with self._lock:
            self._jobs_submitted += 1

    def job_cancelled(self) -> None:
        """A queued job was cancelled before running (caller or shutdown)."""
        with self._lock:
            self._jobs_cancelled += 1

    def submit_rejected(self) -> None:
        """A non-blocking (or timed-out) submit hit the full queue."""
        with self._lock:
            self._rejected_saturated += 1

    def request_retried(self) -> None:
        """A transiently-failed request was re-executed under the retry policy."""
        with self._lock:
            self._retries += 1

    def deadline_exceeded(self) -> None:
        """A request was aborted because its deadline expired."""
        with self._lock:
            self._deadline_exceeded += 1

    def retries_exhausted(self) -> None:
        """A request kept failing transiently through its last allowed attempt."""
        with self._lock:
            self._retries_exhausted += 1

    def engine_rebuilt(self) -> None:
        """A crashed pooled engine was replaced with a fresh one."""
        with self._lock:
            self._engines_rebuilt += 1

    def query_finished(self, seconds: float) -> None:
        """A publication-store query finished (success or failure)."""
        with self._lock:
            self._queries += 1
            self.query_latency.observe(seconds)

    # -- reading ---------------------------------------------------------- #
    @property
    def requests_completed(self) -> int:
        """Requests that finished successfully (both entry paths)."""
        with self._lock:
            return self._requests_completed

    def snapshot(self, *, workers_configured: int, workers_started: int) -> dict:
        """JSON-safe metrics payload for ``stats()`` / ``GET /stats``."""
        with self._lock:
            elapsed = max(time.monotonic() - self._started_at, 1e-9)
            busy = dict(sorted(self._worker_busy.items()))
            utilization = {
                name: min(1.0, seconds / elapsed) for name, seconds in busy.items()
            }
            return {
                "uptime_seconds": elapsed,
                "requests": {
                    "completed": self._requests_completed,
                    "failed": self._requests_failed,
                    "in_flight": self._in_flight,
                    "by_mode": dict(self._by_mode),
                },
                "jobs": {
                    "submitted": self._jobs_submitted,
                    "cancelled": self._jobs_cancelled,
                    "rejected_saturated": self._rejected_saturated,
                },
                "failures": {
                    "retries": self._retries,
                    "deadline_exceeded": self._deadline_exceeded,
                    "retries_exhausted": self._retries_exhausted,
                    "engines_rebuilt": self._engines_rebuilt,
                },
                "latency": {
                    "request_seconds": self.request_latency.snapshot(),
                    "queue_wait_seconds": self.queue_wait.snapshot(),
                    "query_seconds": self.query_latency.snapshot(),
                },
                "queries": {
                    "served": self._queries,
                },
                "phases": {
                    "seconds": dict(sorted(self._phase_seconds.items())),
                },
                "workers": {
                    "configured": workers_configured,
                    "started": workers_started,
                    "busy_seconds": busy,
                    "utilization": utilization,
                },
            }

"""One validated configuration for every way of running the anonymizer.

Before the service layer existed the same knobs were spread over three
overlapping dataclasses -- :class:`~repro.core.engine.AnonymizationParams`
(the engine), :class:`~repro.stream.StreamParams` (the sharded streaming
executor) and the anonymization half of
:class:`~repro.experiments.harness.ExperimentConfig` (the experiment
drivers) -- and every entry point re-assembled its own combination.
:class:`ServiceConfig` is the superset: one frozen, validated dataclass
that projects onto the legacy parameter objects (:meth:`engine_params`,
:meth:`stream_params`) so the engine and executor underneath keep their
exact semantics, plus loaders for the two ways a long-lived service is
configured in practice -- a parsed config file (:meth:`from_dict`) and
process environment variables (:meth:`from_env`).

Validation is delegated to the legacy parameter classes: constructing a
``ServiceConfig`` builds (and discards) an ``AnonymizationParams`` and a
``StreamParams``, so every invariant those classes enforce (``k >= 1``,
``max_cluster_size > k``, a known backend, ...) holds here too and raises
the same :class:`~repro.exceptions.ParameterError`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Mapping, Optional

from repro.core.engine import AnonymizationParams, DEFAULT_MAX_CLUSTER_SIZE
from repro.exceptions import ParameterError
from repro.stream.executor import (
    DEFAULT_MAX_RECORDS_IN_MEMORY,
    DEFAULT_SHARDS,
    StreamParams,
)

#: Environment prefix recognized by :meth:`ServiceConfig.from_env`.
ENV_PREFIX = "REPRO_SERVICE_"

#: ``from_env`` spellings accepted for boolean fields.
_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient request failures.

    The service re-executes a request that failed *transiently* (a crashed
    worker-process pool, an injected transient fault -- never parameter or
    dataset errors) up to ``attempts`` total executions, sleeping
    ``backoff * multiplier**(n-1)`` seconds (capped at ``max_backoff``)
    after the ``n``-th failure.  Retries never sleep past a request's
    deadline, and a request whose source cannot be safely re-read (a plain
    iterable, already partially consumed) is never retried.

    ``attempts=1`` disables retry entirely.
    """

    attempts: int = 2
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0

    def __post_init__(self):
        if not isinstance(self.attempts, int) or self.attempts < 1:
            raise ParameterError(
                f"retry attempts must be a positive integer, got {self.attempts!r}"
            )
        if self.backoff < 0:
            raise ParameterError(f"retry backoff must be >= 0, got {self.backoff}")
        if self.multiplier < 1.0:
            raise ParameterError(
                f"retry multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_backoff < 0:
            raise ParameterError(
                f"retry max_backoff must be >= 0, got {self.max_backoff}"
            )

    def delay(self, failed_attempts: int) -> float:
        """Seconds to sleep after the ``failed_attempts``-th failure (1-based)."""
        return min(
            self.backoff * self.multiplier ** (max(failed_attempts, 1) - 1),
            self.max_backoff,
        )

    def to_dict(self) -> dict:
        """JSON-safe dict form; round-trips through :meth:`from_dict`."""
        return {
            "attempts": self.attempts,
            "backoff": self.backoff,
            "multiplier": self.multiplier,
            "max_backoff": self.max_backoff,
        }

    def to_text(self) -> str:
        """The env-variable syntax; round-trips through :meth:`from_text`."""
        return (
            f"attempts={self.attempts},backoff={self.backoff},"
            f"multiplier={self.multiplier},max_backoff={self.max_backoff}"
        )

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RetryPolicy":
        """Build a policy from a mapping; unknown keys raise."""
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ParameterError(
                f"unknown RetryPolicy keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**dict(payload))

    @classmethod
    def from_text(cls, text: str) -> "RetryPolicy":
        """Parse ``"attempts=3,backoff=0.1,..."`` (the env-variable syntax)."""
        values: dict = {}
        for raw in text.split(","):
            token = raw.strip()
            if not token:
                continue
            name, sep, value = token.partition("=")
            name = name.strip()
            if not sep:
                raise ParameterError(
                    f"malformed retry token {token!r}: expected name=value"
                )
            try:
                values[name] = int(value) if name == "attempts" else float(value)
            except ValueError:
                raise ParameterError(
                    f"malformed retry value in {token!r}"
                ) from None
        return cls.from_dict(values)


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the anonymization service, validated once.

    Attributes:
        k, m: the anonymity parameters (paper defaults: ``k=5, m=2``).
        max_cluster_size: HORPART cluster-size bound.
        refine: whether to run the REFINE step.
        max_join_size: REFINE joint-cluster size cap (``None`` defaults to
            ``8 * max_cluster_size`` inside the engine).
        sensitive_terms: terms forced into term chunks (l-diversity).
        verify: independently re-audit each publication before returning.
        backend: execution core (``"encoded"`` or ``"string"``).
        jobs: worker processes for the VERPART/REFINE fan-outs; the
            service spawns this pool once and shares it across requests.
        kernels: vectorized-kernel backend (``"numpy"`` / ``"python"`` /
            ``"auto"`` / ``None`` meaning ``$REPRO_KERNELS`` then auto);
            the service resolves it once at construction.
        shards: shard count for requests routed to the streaming pipeline.
        max_records_in_memory: streaming bound on resident records.
        shard_strategy: streaming record routing (``hash`` / ``horpart``).
        spill_dir: directory for streaming spill files (``None``: temp dir).
        store_dir: directory of the persistent incremental shard store
            (:mod:`repro.stream.store`).  Required by ``"delta"`` requests;
            like ``spill_dir``, the location is the store's identity, not a
            fingerprinted parameter.  ``None`` (default): delta requests
            are rejected.
        pubstore_dir: directory of the indexed publication store
            (:mod:`repro.pubstore`).  Required by
            :meth:`~repro.service.AnonymizationService.query` and the HTTP
            ``/query`` endpoints; delta requests additionally refresh the
            store's indexes on every publish (generation-stamped against
            the shard store).  ``None`` (default): query requests are
            rejected.
        reuse_vocabulary: share one shard-lifetime vocabulary across a
            shard's windows (output-invariant; see :mod:`repro.stream`).
        auto_stream_threshold: record count above which an ``"auto"``
            request is routed to the streaming pipeline instead of the
            in-memory one; ``None`` uses ``max_records_in_memory``.
        checkpoint: streaming checkpoint switch, passed straight through to
            :class:`StreamParams`: ``None`` (default) checkpoints exactly
            when ``spill_dir`` is set, ``False`` disables the manifest on
            an explicit ``spill_dir``, ``True`` requires one.
        default_deadline: execution budget in seconds applied to every
            request that does not set its own
            :attr:`~repro.service.request.AnonymizationRequest.deadline`.
            The clock starts when the request enters the service (queue
            wait counts), and expiry aborts at the next pipeline phase
            boundary with
            :class:`~repro.exceptions.DeadlineExceededError`.  ``None``
            (default): no deadline.
        retry: the :class:`RetryPolicy` for transient request failures
            (crashed worker pools, injected transient faults).
        max_pending: bound on the service's job queue (``submit`` blocks --
            or raises, when non-blocking -- once this many jobs wait).
        workers: service worker threads draining the job queue.  Each
            worker owns its own warm engine (and, with ``jobs > 1``, its
            own process pool); all workers share the service-lifetime
            vocabulary behind an interning lock, so results stay
            bit-for-bit identical to a single-worker service.  Note that
            one worker already saturates a single CPU for the pure-Python
            pipeline; more workers pay off when requests block on I/O or
            when ``jobs`` fans work out to extra cores (see
            ``docs/OPERATIONS.md``).
    """

    k: int = 5
    m: int = 2
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE
    refine: bool = True
    max_join_size: Optional[int] = None
    sensitive_terms: frozenset = field(default_factory=frozenset)
    verify: bool = True
    backend: str = "encoded"
    jobs: int = 1
    kernels: Optional[str] = None
    shards: int = DEFAULT_SHARDS
    max_records_in_memory: int = DEFAULT_MAX_RECORDS_IN_MEMORY
    shard_strategy: str = "hash"
    spill_dir: Optional[str] = None
    store_dir: Optional[str] = None
    pubstore_dir: Optional[str] = None
    reuse_vocabulary: bool = True
    checkpoint: Optional[bool] = None
    auto_stream_threshold: Optional[int] = None
    default_deadline: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_pending: int = 32
    workers: int = 1

    def __post_init__(self):
        object.__setattr__(
            self, "sensitive_terms", frozenset(str(t) for t in self.sensitive_terms)
        )
        if self.spill_dir is not None:
            object.__setattr__(self, "spill_dir", str(self.spill_dir))
        if self.store_dir is not None:
            object.__setattr__(self, "store_dir", str(self.store_dir))
        if self.pubstore_dir is not None:
            object.__setattr__(self, "pubstore_dir", str(self.pubstore_dir))
        # Accept the retry policy in any of its serialized shapes, so
        # from_dict/from_env round-trip without the caller pre-parsing.
        if isinstance(self.retry, str):
            object.__setattr__(self, "retry", RetryPolicy.from_text(self.retry))
        elif isinstance(self.retry, Mapping):
            object.__setattr__(self, "retry", RetryPolicy.from_dict(self.retry))
        elif not isinstance(self.retry, RetryPolicy):
            raise ParameterError(
                f"retry must be a RetryPolicy (or its dict/text form), "
                f"got {self.retry!r}"
            )
        if self.default_deadline is not None and not self.default_deadline > 0:
            raise ParameterError(
                f"default_deadline must be positive seconds, "
                f"got {self.default_deadline!r}"
            )
        # Delegate the cross-field invariants to the legacy parameter
        # classes: building them validates them.
        self.engine_params()
        self.stream_params()
        # Enforced by ShardedPipeline (not StreamParams), so repeat it here
        # to keep the config fail-fast: a window smaller than the HORPART
        # bound would silently tighten the clustering.
        if self.max_records_in_memory < self.max_cluster_size:
            raise ParameterError(
                "max_records_in_memory must be at least max_cluster_size "
                f"(got {self.max_records_in_memory} < {self.max_cluster_size})"
            )
        if self.auto_stream_threshold is not None and self.auto_stream_threshold < 1:
            raise ParameterError(
                f"auto_stream_threshold must be >= 1, got {self.auto_stream_threshold}"
            )
        if not isinstance(self.max_pending, int) or self.max_pending < 1:
            raise ParameterError(
                f"max_pending must be a positive integer, got {self.max_pending!r}"
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ParameterError(
                f"workers must be a positive integer, got {self.workers!r}"
            )

    # -- projections onto the legacy parameter objects ------------------- #
    def engine_params(self, **overrides) -> AnonymizationParams:
        """The :class:`AnonymizationParams` slice of this configuration."""
        values = dict(
            k=self.k,
            m=self.m,
            max_cluster_size=self.max_cluster_size,
            refine=self.refine,
            max_join_size=self.max_join_size,
            sensitive_terms=self.sensitive_terms,
            verify=self.verify,
            backend=self.backend,
            jobs=self.jobs,
            kernels=self.kernels,
        )
        values.update(overrides)
        return AnonymizationParams(**values)

    def stream_params(self, **overrides) -> StreamParams:
        """The :class:`StreamParams` slice of this configuration."""
        values = dict(
            shards=self.shards,
            max_records_in_memory=self.max_records_in_memory,
            strategy=self.shard_strategy,
            spill_dir=self.spill_dir,
            store_dir=self.store_dir,
            pubstore_dir=self.pubstore_dir,
            reuse_vocabulary=self.reuse_vocabulary,
            checkpoint=self.checkpoint,
        )
        values.update(overrides)
        return StreamParams(**values)

    @property
    def stream_threshold(self) -> int:
        """Record count beyond which ``"auto"`` requests stream."""
        if self.auto_stream_threshold is not None:
            return self.auto_stream_threshold
        return self.max_records_in_memory

    def with_overrides(self, **overrides) -> "ServiceConfig":
        """A copy of the configuration with some fields replaced."""
        return replace(self, **overrides)

    # -- serialization ---------------------------------------------------- #
    def to_dict(self) -> dict:
        """JSON-safe dict form; round-trips through :meth:`from_dict`."""
        payload = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, frozenset):
                value = sorted(value)
            elif isinstance(value, RetryPolicy):
                # The compact text form: JSON-safe, ``str()``-stable, and
                # accepted verbatim by from_dict/from_env/__post_init__.
                value = value.to_text()
            payload[spec.name] = value
        return payload

    @classmethod
    def validate_keys(cls, keys, *, what: str = "keys") -> None:
        """Reject unknown field names (shared by ``from_dict`` and requests).

        A misspelled knob silently falling back to its default is the
        classic production config bug, so every entry point that accepts
        field names by string fails fast through this check.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(keys) - known)
        if unknown:
            raise ParameterError(
                f"unknown ServiceConfig {what}: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ServiceConfig":
        """Build a configuration from a mapping (e.g. a parsed config file).

        Unknown keys raise :class:`~repro.exceptions.ParameterError` --- a
        misspelled knob silently falling back to its default is the classic
        production config bug.
        """
        cls.validate_keys(payload)
        values = dict(payload)
        if "sensitive_terms" in values and values["sensitive_terms"] is not None:
            values["sensitive_terms"] = frozenset(
                str(t) for t in values["sensitive_terms"]
            )
        return cls(**values)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None, prefix: str = ENV_PREFIX
    ) -> "ServiceConfig":
        """Build a configuration from ``REPRO_SERVICE_*`` environment variables.

        Every dataclass field maps to ``<prefix><FIELD_NAME>`` (upper case):
        ``REPRO_SERVICE_K=10``, ``REPRO_SERVICE_SHARD_STRATEGY=horpart``,
        ``REPRO_SERVICE_SENSITIVE_TERMS=aids,flu`` (comma separated), ...
        Booleans accept ``1/0``, ``true/false``, ``yes/no``, ``on/off``;
        optional fields accept the empty string or ``none`` for ``None``.
        Unset variables keep their defaults; a malformed value -- or a
        prefixed variable naming no known field (a misspelled knob
        silently keeping its default is the classic production config
        bug) -- raises :class:`~repro.exceptions.ParameterError` naming
        the variable.
        """
        if environ is None:
            environ = os.environ
        found = {
            key[len(prefix):].lower(): raw
            for key, raw in environ.items()
            if key.startswith(prefix)
        }
        cls.validate_keys(found, what=f"environment variables (via {prefix}*)")
        return cls(
            **{name: _parse_env_value(name, raw) for name, raw in found.items()}
        )


#: ``from_env`` parsers per field: how each raw string becomes a value.
_INT_FIELDS = frozenset(
    {
        "k",
        "m",
        "max_cluster_size",
        "jobs",
        "shards",
        "max_records_in_memory",
        "max_pending",
        "workers",
    }
)
_OPTIONAL_INT_FIELDS = frozenset({"max_join_size", "auto_stream_threshold"})
_BOOL_FIELDS = frozenset({"refine", "verify", "reuse_vocabulary"})
_OPTIONAL_BOOL_FIELDS = frozenset({"checkpoint"})
_OPTIONAL_FLOAT_FIELDS = frozenset({"default_deadline"})
_OPTIONAL_STR_FIELDS = frozenset(
    {"kernels", "spill_dir", "store_dir", "pubstore_dir"}
)


def _parse_env_value(name: str, raw: str):
    """Parse one ``REPRO_SERVICE_*`` value into its field's type."""
    text = raw.strip()
    if name in _BOOL_FIELDS or name in _OPTIONAL_BOOL_FIELDS:
        lowered = text.lower()
        if name in _OPTIONAL_BOOL_FIELDS and lowered in ("", "none"):
            return None
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
        raise ParameterError(
            f"{ENV_PREFIX}{name.upper()}: expected a boolean "
            f"(1/0, true/false, yes/no, on/off), got {raw!r}"
        )
    if name in _OPTIONAL_FLOAT_FIELDS:
        if text.lower() in ("", "none"):
            return None
        try:
            return float(text)
        except ValueError:
            raise ParameterError(
                f"{ENV_PREFIX}{name.upper()}: expected a number of seconds, "
                f"got {raw!r}"
            ) from None
    if name == "retry":
        # "attempts=3,backoff=0.1" -- RetryPolicy's text form.
        return RetryPolicy.from_text(text)
    if name in _INT_FIELDS or name in _OPTIONAL_INT_FIELDS:
        if name in _OPTIONAL_INT_FIELDS and text.lower() in ("", "none"):
            return None
        try:
            return int(text)
        except ValueError:
            raise ParameterError(
                f"{ENV_PREFIX}{name.upper()}: expected an integer, got {raw!r}"
            ) from None
    if name == "sensitive_terms":
        return frozenset(t.strip() for t in text.split(",") if t.strip())
    if name in _OPTIONAL_STR_FIELDS and text.lower() in ("", "none"):
        return None
    return text

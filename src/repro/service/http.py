"""HTTP front door for the anonymization service (``repro serve``).

A small, dependency-free production entry point built on the stdlib
:class:`http.server.ThreadingHTTPServer`: one
:class:`~repro.service.AnonymizationService` behind a JSON-over-HTTP
surface.  Connection threads only parse requests and wait on futures; all
anonymization work happens on the service's worker pool, so the bounded
job queue -- not the socket listener -- is the backpressure point.

Endpoints:

* ``POST /anonymize`` -- body ``{"records": [[...], ...], "mode": "auto",
  "overrides": {...}, "tag": "...", "async": false}``.  Synchronous by
  default (the response carries the publication); ``"async": true``
  submits a job and answers ``202`` with a ``job_id`` to poll.  Both
  shapes go through the service's bounded queue, so a saturated service
  answers ``429`` (with ``Retry-After``) instead of queueing unboundedly,
  and a closed/draining one answers ``503``.
* ``GET /jobs/<id>`` -- job state (``pending/running/done/failed/
  cancelled``); a finished job's response carries the publication.
* ``GET /stats`` -- :meth:`AnonymizationService.stats` verbatim: request
  and queue-wait latency histograms, per-phase seconds, queue depth,
  worker utilization.
* ``GET /query`` / ``POST /query`` -- analysis queries answered from the
  configured :class:`~repro.pubstore.PublicationStore` indexes
  (``pubstore_dir``) without touching the anonymization workers.  The GET
  shape is query-string driven: ``?op=top_terms&count=5``,
  ``?op=cooccurrence_count&term=a&term=b`` (``term``, ``antecedent`` and
  ``consequent`` repeat; ``count``, ``min_support``, ``reconstructions``
  and ``seed`` are integers).  The POST shape carries the same fields as
  a JSON body: ``{"op": "frequent_pairs", "min_support": 10}``.  Both
  answer :meth:`QueryEngine.execute <repro.pubstore.QueryEngine.execute>`'s
  payload verbatim; a service without ``pubstore_dir`` answers ``400``,
  a store that has not been built yet ``409`` (kind
  ``checkpoint_conflict``).
* ``GET /healthz`` -- liveness: ``200`` while the service accepts work,
  ``503`` once it is closed.

Error mapping: every error body is ``{"error": <message>, "kind":
<machine-readable kind>}``.  Malformed JSON / unknown knobs / invalid
records answer ``400`` (kind ``bad_request``); unknown paths ``404``;
wrong methods ``405``; oversize bodies ``413`` (kind ``too_large``);
queue saturation ``429`` with ``Retry-After`` (kind ``saturated``); a
closed service ``503`` (kind ``closed``); a request whose transient
failures outlived its retry budget ``503`` with ``Retry-After`` (kind
``retries_exhausted``); an expired request deadline ``504`` (kind
``deadline_exceeded``); anything unexpected ``500`` (kind ``internal``).
``POST /anonymize`` additionally accepts ``"deadline"`` (seconds budget
for this request) and ``"resume"`` (resume a checkpointed streaming run;
requires ``"mode": "stream"``).  With ``"mode": "delta"`` the body
mutates the service's persistent shard store instead: ``"records"``
(alias ``"append"``) holds the records to append, ``"delete"`` the
records to remove, either side may be empty or absent (an empty delta
answers with the stored publication), ``"delta_id"`` optionally carries
a client idempotency token (re-POSTing the same delta with the same
token after a crash or ambiguous timeout never double-applies it), and
a request conflicting with the store's durable identity (wrong
parameters, plan drift, deleting an absent record, a reused token with
different contents) answers ``409`` (kind ``checkpoint_conflict``).  The
publication bytes are exactly ``service.run(...)``'s (bit-for-bit;
covered by the test suite and the throughput benchmark).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from itertools import count
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    CheckpointError,
    DatasetError,
    DeadlineExceededError,
    ParameterError,
    ReproError,
    RetriesExhaustedError,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.service.service import AnonymizationService, Job

#: Default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"

#: Default port of ``repro serve``.
DEFAULT_PORT = 8350

#: Hard cap on request bodies (a dataset larger than this should be
#: streamed from a file or object store, not POSTed inline).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Finished jobs retained for ``GET /jobs/<id>`` before the oldest are
#: evicted (pending/running jobs are never evicted).
MAX_RETAINED_JOBS = 1024


def classify_error(exc: BaseException) -> tuple:
    """Map a service exception to ``(status, kind, extra headers)``.

    One mapping shared by the synchronous ``POST /anonymize`` path and the
    failed-job payloads of ``GET /jobs/<id>``, so a failure reports the
    same machine-readable ``kind`` whether the caller waited inline or
    polled.  Order matters: the specific service failures are subclasses
    of :class:`ReproError` and must be matched first.
    """
    if isinstance(exc, DeadlineExceededError):
        return 504, "deadline_exceeded", ()
    if isinstance(exc, RetriesExhaustedError):
        return 503, "retries_exhausted", (("Retry-After", "1"),)
    if isinstance(exc, ServiceSaturatedError):
        return 429, "saturated", (("Retry-After", "1"),)
    if isinstance(exc, ServiceClosedError):
        return 503, "closed", ()
    if isinstance(exc, CheckpointError):
        # Covers StoreError too: the request conflicts with the durable
        # state on disk (mismatched fingerprint, plan drift, a delete of a
        # record the store does not hold) -- the classic 409, not a 400:
        # the same body can be perfectly valid against another store.
        return 409, "checkpoint_conflict", ()
    if isinstance(exc, (ParameterError, DatasetError)):
        return 400, "bad_request", ()
    return 500, "internal", ()


class _JobRegistry:
    """Id-addressed store of submitted jobs with bounded retention."""

    def __init__(self, max_retained: int = MAX_RETAINED_JOBS):
        self._jobs: dict[str, Job] = {}
        self._ids = count(1)
        self._lock = threading.Lock()
        self._max_retained = max_retained

    def add(self, job: Job) -> str:
        """Register a job; returns its id and evicts old finished jobs."""
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            self._jobs[job_id] = job
            if len(self._jobs) > self._max_retained:
                # Insertion order == submission order: drop the oldest
                # *finished* jobs first; live jobs always stay addressable.
                for key in list(self._jobs):
                    if len(self._jobs) <= self._max_retained:
                        break
                    if self._jobs[key].done():
                        del self._jobs[key]
            return job_id

    def get(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP connection onto the bound service (see module doc)."""

    #: Set by :class:`ServiceHTTPServer` on the handler subclass it builds.
    service: AnonymizationService
    registry: _JobRegistry
    quiet: bool = True
    max_body_bytes: int = MAX_BODY_BYTES

    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------- #
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Suppress per-request stderr lines unless the server is verbose."""
        if not self.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise _HttpError(411, "Content-Length is required")
        try:
            length = int(length)
        except ValueError:
            raise _HttpError(400, f"malformed Content-Length: {length!r}") from None
        if length > self.max_body_bytes:
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte cap; stream large datasets from "
                "a file instead of POSTing inline",
                kind="too_large",
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    # -- routing --------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Serve ``/healthz``, ``/stats`` and ``/jobs/<id>``."""
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                self._handle_healthz()
            elif path == "/stats":
                self._send_json(200, self.service.stats())
            elif path == "/query":
                self._handle_query_get()
            elif path.startswith("/jobs/"):
                self._handle_job(path[len("/jobs/"):])
            elif path in ("/anonymize",):
                self._send_json(
                    405,
                    {"error": "POST /anonymize", "kind": "method_not_allowed"},
                    headers=[("Allow", "POST")],
                )
            else:
                self._send_json(
                    404, {"error": f"unknown path {path!r}", "kind": "not_found"}
                )
        except _HttpError as exc:
            self._send_json(exc.status, {"error": exc.message, "kind": exc.kind})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_json(
                500, {"error": f"internal error: {exc}", "kind": "internal"}
            )

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Serve ``POST /anonymize`` (sync and async job submission)."""
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/anonymize":
                self._handle_anonymize(self._read_json_body())
            elif path == "/query":
                self._handle_query_post(self._read_json_body())
            else:
                self._send_json(
                    404, {"error": f"unknown path {path!r}", "kind": "not_found"}
                )
        except _HttpError as exc:
            self._send_json(exc.status, {"error": exc.message, "kind": exc.kind})
        except BrokenPipeError:
            pass
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_json(
                500, {"error": f"internal error: {exc}", "kind": "internal"}
            )

    # -- endpoints ------------------------------------------------------- #
    #: ``GET /query`` parameters parsed as integers.
    _QUERY_INT_PARAMS = ("count", "min_support", "reconstructions", "seed")

    #: ``GET /query`` parameters that repeat to form term lists (the
    #: singular ``term`` feeds the engine's ``terms`` parameter).
    _QUERY_TERM_PARAMS = ("term", "antecedent", "consequent")

    def _handle_query_get(self) -> None:
        query = urlsplit(self.path).query
        fields = parse_qs(query, keep_blank_values=True)
        ops = fields.pop("op", None)
        if not ops or len(ops) != 1:
            raise _HttpError(400, 'exactly one "op" query parameter is required')
        params: dict = {}
        for name in self._QUERY_TERM_PARAMS:
            values = fields.pop(name, None)
            if values is not None:
                params["terms" if name == "term" else name] = values
        for name in self._QUERY_INT_PARAMS:
            values = fields.pop(name, None)
            if values is None:
                continue
            if len(values) != 1:
                raise _HttpError(400, f'"{name}" must appear at most once')
            try:
                params[name] = int(values[0])
            except ValueError:
                raise _HttpError(
                    400, f'"{name}" must be an integer, got {values[0]!r}'
                ) from None
        if fields:
            unknown = ", ".join(sorted(fields))
            raise _HttpError(400, f"unknown query parameters: {unknown}")
        self._run_query(ops[0], params)

    def _handle_query_post(self, payload: dict) -> None:
        op = payload.pop("op", None)
        if not isinstance(op, str):
            raise _HttpError(400, 'body must carry a string "op"')
        self._run_query(op, payload)

    def _run_query(self, op: str, params: dict) -> None:
        try:
            result = self.service.query(op, params)
        except ReproError as exc:
            status, kind, headers = classify_error(exc)
            self._send_json(
                status, {"error": str(exc), "kind": kind}, headers=headers
            )
            return
        self._send_json(200, result)

    def _handle_healthz(self) -> None:
        if self.service.closed:
            self._send_json(503, {"status": "closed"})
            return
        self._send_json(
            200, {"status": "ok", "workers": self.service.config.workers}
        )

    def _handle_job(self, job_id: str) -> None:
        job = self.registry.get(job_id)
        if job is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        state = job.state()
        payload: dict = {"job_id": job_id, "state": state, "tag": job.request.tag}
        if state == "done":
            result = job.result(timeout=0)
            payload["mode"] = result.mode
            payload["summary"] = result.summary()
            payload["publication"] = result.to_dict()
        elif state == "failed":
            exc = job.exception(timeout=0)
            _, kind, _ = classify_error(exc)
            payload["error"] = str(exc)
            payload["kind"] = kind
        elif state == "cancelled":
            payload["error"] = "job was cancelled before it ran"
            payload["kind"] = "cancelled"
        self._send_json(200, payload)

    def _handle_anonymize(self, payload: dict) -> None:
        mode = payload.get("mode", "auto")
        delta_id = payload.get("delta_id")
        if mode == "delta":
            # Delta bodies mutate the configured store: "records" (alias
            # "append") holds the appends and "delete" the removals; either
            # side may be absent, and an entirely empty delta is the no-op
            # fast path answered from the stored publication.  "delta_id"
            # is the client's idempotency token -- re-POSTing the same
            # delta with the same token never double-applies it.
            records = payload.get("records", payload.get("append"))
            delete = payload.get("delete")
            for name, value in (("records", records), ("delete", delete)):
                if value is not None and not isinstance(value, list):
                    raise _HttpError(
                        400, f'"{name}" must be a list of term arrays'
                    )
            if delta_id is not None and not isinstance(delta_id, str):
                raise _HttpError(400, '"delta_id" must be a string')
        else:
            records = payload.get("records")
            delete = None
            if not isinstance(records, list) or not records:
                raise _HttpError(
                    400, 'body must carry a non-empty "records" list of term arrays'
                )
        run_async = bool(payload.get("async", False))
        request_fields = {
            "mode": mode,
            "overrides": payload.get("overrides") or {},
            "tag": payload.get("tag"),
            "deadline": payload.get("deadline"),
            "resume": bool(payload.get("resume", False)),
            "delete": delete,
            "delta_id": delta_id,
        }
        try:
            # Non-blocking submit on both shapes: a full job queue answers
            # 429 immediately instead of parking connection threads, and
            # the queue-wait of every HTTP request lands in the metrics.
            job = self.service.submit(records, block=False, **request_fields)
        except (TypeError, ValueError) as exc:
            # e.g. a non-numeric "deadline" in the body: caller error.
            raise _HttpError(400, str(exc)) from None
        except ReproError as exc:
            status, kind, headers = classify_error(exc)
            self._send_json(
                status, {"error": str(exc), "kind": kind}, headers=headers
            )
            return
        if run_async:
            job_id = self.registry.add(job)
            self._send_json(
                202,
                {"job_id": job_id, "state": job.state(), "href": f"/jobs/{job_id}"},
            )
            return
        try:
            result = job.result()
        except ReproError as exc:
            status, kind, headers = classify_error(exc)
            self._send_json(
                status, {"error": str(exc), "kind": kind}, headers=headers
            )
            return
        self._send_json(
            200,
            {
                "mode": result.mode,
                "tag": result.tag,
                "summary": result.summary(),
                "publication": result.to_dict(),
            },
        )


class _HttpError(Exception):
    """Internal control-flow error carrying an HTTP status + message + kind."""

    def __init__(self, status: int, message: str, kind: str = "bad_request"):
        super().__init__(message)
        self.status = status
        self.message = message
        self.kind = kind


class ServiceHTTPServer:
    """The ``repro serve`` server: a service bound to a threading HTTP listener.

    Args:
        service: the (open) :class:`AnonymizationService` to serve.
        host, port: bind address; ``port=0`` picks a free port (read it
            back from :attr:`port` -- the test suite does this).
        own_service: when true (default), :meth:`close` also closes the
            service; pass ``False`` to share an externally-managed service.
        quiet: suppress the stdlib per-request log lines.
        max_body_bytes: cap on ``POST`` bodies (``413`` above it); defaults
            to :data:`MAX_BODY_BYTES`.

    Use :meth:`serve_forever` to block (the CLI does), or :meth:`start`
    to serve from a background thread::

        service = AnonymizationService(config)
        server = ServiceHTTPServer(service, port=8350)
        server.start()
        ...
        server.close(drain=True)   # stop listening, drain jobs, close service
    """

    def __init__(
        self,
        service: AnonymizationService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        own_service: bool = True,
        quiet: bool = True,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        self.service = service
        self.own_service = own_service
        registry = _JobRegistry()
        handler = type(
            "_BoundServiceRequestHandler",
            (_ServiceRequestHandler,),
            {
                "service": service,
                "registry": registry,
                "quiet": quiet,
                "max_body_bytes": int(max_body_bytes),
            },
        )
        self.registry = registry
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve requests on the caller's thread until :meth:`close`."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ServiceHTTPServer":
        """Serve requests from a daemon background thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-serve-http", daemon=True
            )
            self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Graceful shutdown: stop listening, then drain (or cancel) jobs.

        The listener stops accepting connections first, so no new work can
        arrive; then the service is closed with the given ``drain``
        semantics (when this server owns it): ``drain=True`` finishes every
        queued job -- in-flight ``GET /jobs`` pollers see them complete --
        while ``drain=False`` cancels whatever has not started.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self.own_service and not self.service.closed:
            self.service.close(drain=drain)


def serve(
    config=None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    **server_kwargs,
) -> ServiceHTTPServer:
    """Build a service for ``config`` and start serving it in the background.

    Convenience for embedding; the CLI drives :class:`ServiceHTTPServer`
    directly so it can block on the caller's thread.
    """
    service = AnonymizationService(config)
    return ServiceHTTPServer(service, host, port, **server_kwargs).start()

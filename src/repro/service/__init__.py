"""Service-grade facade over the disassociation pipelines.

The public surface of the service layer:

* :class:`AnonymizationService` -- a long-lived engine owning the warm
  state (worker pool, vocabulary, kernel backend) shared across requests,
  with synchronous (:meth:`~AnonymizationService.run`) and queued
  (:meth:`~AnonymizationService.submit` -> :class:`Job`) execution.
* :class:`ServiceConfig` -- the single validated configuration consolidating
  the engine, streaming and experiment parameter sets, with
  :meth:`~ServiceConfig.from_dict` / :meth:`~ServiceConfig.from_env`
  loaders.
* :class:`AnonymizationRequest` / :class:`PublicationResult` -- the uniform
  request and result model covering batch, streaming and file inputs.
* :class:`ServiceHTTPServer` (:mod:`repro.service.http`) -- the HTTP front
  door behind ``repro serve``: ``POST /anonymize`` (sync + async jobs),
  ``GET /jobs/<id>``, ``GET /stats``, ``GET /healthz``, with the bounded
  job queue mapped to 429/503 backpressure.
* :class:`~repro.service.metrics.ServiceMetrics` -- per-request latency
  and queue-wait histograms, phase timings, worker utilization and
  failure accounting (retries, deadline expiries, engine rebuilds) behind
  :meth:`AnonymizationService.stats`.
* :class:`RetryPolicy` -- bounded exponential-backoff retry of transient
  failures (crashed worker pools, injected faults), applied per request
  together with its deadline (``AnonymizationRequest.deadline`` /
  ``ServiceConfig.default_deadline``).

The legacy one-shot entry points (:func:`repro.anonymize`,
:func:`repro.anonymize_stream`, the CLI) are thin shims over this layer.
"""

from repro.service.config import ENV_PREFIX, RetryPolicy, ServiceConfig
from repro.service.http import ServiceHTTPServer, serve
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.request import MODES, AnonymizationRequest, PublicationResult
from repro.service.service import AnonymizationService, Job, anonymization_service

__all__ = [
    "ENV_PREFIX",
    "MODES",
    "AnonymizationRequest",
    "AnonymizationService",
    "Job",
    "LatencyHistogram",
    "PublicationResult",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "anonymization_service",
    "serve",
]

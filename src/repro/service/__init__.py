"""Service-grade facade over the disassociation pipelines.

The public surface of the service layer:

* :class:`AnonymizationService` -- a long-lived engine owning the warm
  state (worker pool, vocabulary, kernel backend) shared across requests,
  with synchronous (:meth:`~AnonymizationService.run`) and queued
  (:meth:`~AnonymizationService.submit` -> :class:`Job`) execution.
* :class:`ServiceConfig` -- the single validated configuration consolidating
  the engine, streaming and experiment parameter sets, with
  :meth:`~ServiceConfig.from_dict` / :meth:`~ServiceConfig.from_env`
  loaders.
* :class:`AnonymizationRequest` / :class:`PublicationResult` -- the uniform
  request and result model covering batch, streaming and file inputs.

The legacy one-shot entry points (:func:`repro.anonymize`,
:func:`repro.anonymize_stream`, the CLI) are thin shims over this layer.
"""

from repro.service.config import ENV_PREFIX, ServiceConfig
from repro.service.request import MODES, AnonymizationRequest, PublicationResult
from repro.service.service import AnonymizationService, Job, anonymization_service

__all__ = [
    "ENV_PREFIX",
    "MODES",
    "AnonymizationRequest",
    "AnonymizationService",
    "Job",
    "PublicationResult",
    "ServiceConfig",
    "anonymization_service",
]

"""The service's uniform request and result model.

One :class:`AnonymizationRequest` covers every input shape the library
accepts -- an in-memory :class:`~repro.core.dataset.TransactionDataset`,
any (possibly unbounded) iterable of records, or a dataset file path --
and every execution mode: ``"batch"`` (the in-memory
:class:`~repro.core.engine.Pipeline`), ``"stream"`` (the bounded-memory
:class:`~repro.stream.ShardedPipeline`) or ``"auto"`` (route on input type
and the configured memory threshold; see
:meth:`~repro.service.AnonymizationService.run`).

Every execution returns a :class:`PublicationResult`: the publication plus
the run's report, with the expensive derived artifacts (dict/JSON
serialization, information-loss metrics) computed lazily and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.core.clusters import DisassociatedDataset
from repro.core.dataset import TransactionDataset
from repro.exceptions import ParameterError
from repro.service.config import ServiceConfig

PathLike = Union[str, Path]

#: Execution modes a request may ask for.
MODES = ("auto", "batch", "stream", "delta")


@dataclass(frozen=True)
class AnonymizationRequest:
    """One unit of work for the :class:`~repro.service.AnonymizationService`.

    Attributes:
        source: the input -- a :class:`TransactionDataset`, a dataset file
            path (``str`` / :class:`~pathlib.Path`; format sniffed from the
            extension unless ``format`` says otherwise), or any iterable of
            records.
        mode: ``"auto"`` (default) routes on input type and the service's
            memory threshold; ``"batch"`` forces the in-memory pipeline
            (materializing the input if needed); ``"stream"`` forces the
            sharded streaming pipeline; ``"delta"`` applies the request as
            an incremental mutation of the configured persistent store
            (``source`` holds the records to append, ``delete`` the
            records to remove; requires the service's ``store_dir``).
        format: file-format hint for path sources (``"auto"`` sniffs from
            the extension; see :mod:`repro.datasets.io`).
        delimiter: term delimiter for transaction-file sources.
        overrides: per-request :class:`ServiceConfig` field overrides
            (e.g. ``{"k": 10}``); validated against the service's config
            when the request executes.
        tag: optional caller-chosen label, echoed on the result (useful for
            correlating submitted jobs with their callers).
        deadline: execution budget in seconds for this request, overriding
            the service's ``default_deadline``.  The clock starts when the
            request enters the service (queue wait counts) and expiry
            aborts at the next pipeline phase boundary with
            :class:`~repro.exceptions.DeadlineExceededError`.
        resume: resume a crashed checkpointed streaming run from the
            manifest in the configured ``spill_dir`` instead of starting
            over (requires ``mode="stream"``; see
            :meth:`repro.stream.ShardedPipeline.run`).
        delete: records to remove from the persistent store (the earliest
            surviving occurrence of each), applied together with the
            appends in ``source`` as one atomic delta.  Only meaningful
            with ``mode="delta"``: a source of records/dataset/path, or
            ``None`` when the delta only deletes.
        delta_id: optional client-supplied idempotency token for
            ``mode="delta"``: the store commits a mutation at most once
            per token, so re-submitting the same delta with the same
            token after a crash (or timeout of unknown outcome) cannot
            double-apply it.  Omitted, the service generates one per
            request -- its own transparent retries stay idempotent, but
            a *re-submitted* request counts as a new delta.  Must be
            unique per logical delta.
    """

    source: Union[TransactionDataset, PathLike, Any] = None
    mode: str = "auto"
    format: str = "auto"
    delimiter: Optional[str] = None
    overrides: Mapping = field(default_factory=dict)
    tag: Optional[str] = None
    deadline: Optional[float] = None
    resume: bool = False
    delete: Union[TransactionDataset, PathLike, Any] = None
    delta_id: Optional[str] = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ParameterError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.deadline is not None and not self.deadline > 0:
            raise ParameterError(
                f"deadline must be positive seconds, got {self.deadline!r}"
            )
        if self.resume and self.mode != "stream":
            raise ParameterError(
                'resume=True requires mode="stream": only checkpointed '
                "streaming runs leave a manifest to resume from"
            )
        if self.delete is not None and self.mode != "delta":
            raise ParameterError(
                'delete requires mode="delta": only incremental runs over a '
                "persistent store can remove records"
            )
        if self.delta_id is not None:
            if self.mode != "delta":
                raise ParameterError(
                    'delta_id requires mode="delta": it is the idempotency '
                    "token of one incremental mutation"
                )
            if not isinstance(self.delta_id, str) or not self.delta_id:
                raise ParameterError(
                    f"delta_id must be a non-empty string, got {self.delta_id!r}"
                )
        if self.source is None and self.mode != "delta":
            raise ParameterError(
                "source is required (only a delta request may omit it, "
                "meaning an empty append)"
            )
        overrides = dict(self.overrides)
        # Fail fast on misspelled knobs (the values themselves are
        # validated when the merged ServiceConfig is built at execution).
        ServiceConfig.validate_keys(overrides, what="override keys")
        object.__setattr__(self, "overrides", overrides)

    @property
    def is_path(self) -> bool:
        """Whether the source is a dataset file path."""
        return isinstance(self.source, (str, Path))

    @property
    def is_dataset(self) -> bool:
        """Whether the source is an in-memory :class:`TransactionDataset`."""
        return isinstance(self.source, TransactionDataset)


class PublicationResult:
    """A publication plus its run report, with lazy derived artifacts.

    Attributes:
        publication: the published :class:`DisassociatedDataset`.
        report: the run's report --
            :class:`~repro.core.engine.AnonymizationReport` for batch runs,
            :class:`~repro.stream.ShardedReport` for streamed ones.
        mode: the mode the request was actually routed to (``"batch"``,
            ``"stream"`` or ``"delta"`` -- never ``"auto"``).
        config: the (override-merged) :class:`ServiceConfig` of the run.
        original: the original dataset, when the run materialized it in
            memory (batch runs); ``None`` for streamed inputs.  Used as the
            default reference of :meth:`metrics`.
        tag: the request's tag, echoed back.
    """

    def __init__(
        self,
        publication: DisassociatedDataset,
        report,
        mode: str,
        config: ServiceConfig,
        original: Optional[TransactionDataset] = None,
        tag: Optional[str] = None,
    ):
        self.publication = publication
        self.report = report
        self.mode = mode
        self.config = config
        self.original = original
        self.tag = tag
        self._dict_cache: Optional[dict] = None
        self._metrics_cache: dict = {}

    def __repr__(self) -> str:
        return (
            f"PublicationResult(mode={self.mode!r}, "
            f"clusters={len(self.publication.clusters)}, tag={self.tag!r})"
        )

    def to_dict(self) -> dict:
        """The publication's serialized form (computed once, then cached)."""
        if self._dict_cache is None:
            self._dict_cache = self.publication.to_dict()
        return self._dict_cache

    def save(self, path: PathLike) -> Path:
        """Write the publication as JSON; returns the written path."""
        from repro.datasets.io import write_disassociated_json

        path = Path(path)
        write_disassociated_json(self.publication, path)
        return path

    def save_store(self, path: PathLike):
        """Persist the publication as an indexed, queryable store.

        Builds (or atomically replaces) a
        :class:`~repro.pubstore.PublicationStore` under ``path`` and
        returns it **open**, so the caller can query immediately or
        ``close()`` it for later ``repro query`` / HTTP ``/query`` use.
        The serialized form cached by :meth:`to_dict` is reused, so
        saving both JSON and a store serializes the publication once.
        """
        from repro.pubstore import PublicationStore

        return PublicationStore.from_publication(
            self.publication, path, payload=self.to_dict()
        )

    def metrics(
        self,
        original: Optional[TransactionDataset] = None,
        *,
        top_k: int = 100,
        max_itemset_size: int = 3,
        re_range: tuple = (60, 80),
        seed: int = 0,
        reconstructions: int = 1,
    ) -> dict:
        """The paper's information-loss metrics for this publication.

        ``original`` defaults to the dataset the request materialized
        (batch runs over in-memory inputs); streamed runs must pass it
        explicitly.  Results are cached per argument combination -- the
        metrics involve reconstruction and itemset mining, which dwarf the
        anonymization itself at small scales.
        """
        if original is None:
            original = self.original
        if original is None:
            raise ParameterError(
                "metrics() needs the original dataset; this result was produced "
                "from a streamed source, so pass metrics(original=...)"
            )
        # The cached entry keeps a strong reference to its original dataset
        # and is matched by identity: an id() alone could be reused by a
        # different dataset once the first one is garbage-collected.
        key = (top_k, max_itemset_size, re_range, seed, reconstructions)
        cached = self._metrics_cache.get(key)
        if cached is not None and cached[0] is original:
            return cached[1]
        # Imported lazily: the experiment harness sits above the service
        # layer in the dependency order.
        from repro.experiments.harness import ExperimentConfig, evaluate

        eval_config = ExperimentConfig(
            k=self.config.k,
            m=self.config.m,
            top_k=top_k,
            max_itemset_size=max_itemset_size,
            re_range=re_range,
            seed=seed,
        )
        metrics = evaluate(
            original, self.publication, eval_config, reconstructions=reconstructions
        )
        self._metrics_cache[key] = (original, metrics)
        return metrics

    def summary(self) -> str:
        """One-line human readable summary of the run (mode-appropriate)."""
        if hasattr(self.report, "summary"):
            return self.report.summary()
        report = self.report
        return (
            f"anonymized {report.num_records} records into "
            f"{report.num_clusters} clusters "
            f"({report.num_record_chunks} record chunks, "
            f"{report.num_shared_chunks} shared chunks) "
            f"in {report.total_seconds:.2f}s"
        )

"""The long-lived anonymization service facade.

:class:`AnonymizationService` owns, for its whole lifetime, the warm state
that every one-shot entry point used to rebuild per call:

* one :class:`~repro.core.engine.Disassociator` (and with it one shared
  worker pool, spawned lazily and kept across requests via ``keep_pool``),
* one service-lifetime :class:`~repro.core.vocab.Vocabulary`, so the
  encode phase of back-to-back batch requests only interns terms it has
  never seen (interning is append-only and output-invariant -- the same
  property the streaming executor relies on per shard), and
* a once-resolved vectorized-kernel backend.

Requests (:class:`~repro.service.request.AnonymizationRequest`) auto-route
to the in-memory pipeline or the sharded streaming pipeline on input type
and the configured memory threshold; both paths return the same
:class:`~repro.service.request.PublicationResult`.

Concurrency model: :meth:`run` executes synchronously in the caller's
thread; :meth:`submit` enqueues onto a bounded FIFO queue drained by a
single worker thread.  Both paths serialize on one internal lock, so the
warm engine (and its process pool) is never used by two requests at once
and a given sequence of requests produces the same publications regardless
of how callers interleave -- the vocabulary the requests share is
output-invariant by construction, so even the *order* of concurrent
submissions cannot change any individual result.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import CancelledError, Future
from dataclasses import fields
from itertools import chain, islice
from typing import Iterator, Optional

from repro.core import kernels
from repro.core.dataset import TransactionDataset
from repro.core.engine import AnonymizationParams, Disassociator
from repro.core.vocab import Vocabulary
from repro.datasets.io import iter_records
from repro.exceptions import (
    ParameterError,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.service.config import ServiceConfig
from repro.service.request import AnonymizationRequest, PublicationResult
from repro.stream.executor import ShardedPipeline

#: Queue item telling the worker thread to exit.
_SENTINEL = object()

#: Engine-identity fields: a per-request override touching one of these
#: cannot reuse the warm engine (its pool/kernel state was built for the
#: service's own values), so the request runs on a transient engine.
_ENGINE_IDENTITY_FIELDS = ("backend", "jobs", "kernels")

#: Keyword arguments of run()/submit() that configure the request itself;
#: every other keyword is treated as a per-request ServiceConfig override.
_REQUEST_FIELDS = tuple(
    spec.name for spec in fields(AnonymizationRequest) if spec.name != "source"
)


class Job:
    """A submitted request's future result.

    Thin, read-only wrapper over :class:`concurrent.futures.Future` that
    keeps the originating request attached and translates a shutdown
    cancellation into :class:`~repro.exceptions.ServiceClosedError`.
    """

    def __init__(self, request: AnonymizationRequest):
        self.request = request
        self._future: Future = Future()
        self._cancelled_by_service = False

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"Job({self.request.mode!r}, {state}, tag={self.request.tag!r})"

    def done(self) -> bool:
        """Whether the job finished (successfully, with an error, or cancelled)."""
        return self._future.done()

    def cancelled(self) -> bool:
        """Whether the job was cancelled before it ran."""
        return self._future.cancelled()

    def cancel(self) -> bool:
        """Try to cancel the job; only possible while it is still queued."""
        return self._future.cancel()

    def result(self, timeout: Optional[float] = None) -> PublicationResult:
        """Block for (and return) the job's :class:`PublicationResult`.

        Raises whatever the execution raised.  A job cancelled by a
        non-draining service shutdown raises
        :class:`~repro.exceptions.ServiceClosedError`; one the caller
        cancelled via :meth:`cancel` raises the plain
        :class:`concurrent.futures.CancelledError`.
        """
        try:
            return self._future.result(timeout)
        except CancelledError:
            if not self._cancelled_by_service:
                raise
            raise ServiceClosedError(
                "job was cancelled by service shutdown before it ran"
            ) from None

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The exception the job raised, or ``None`` (blocks like ``result``)."""
        try:
            return self._future.exception(timeout)
        except CancelledError:
            if not self._cancelled_by_service:
                raise
            return ServiceClosedError(
                "job was cancelled by service shutdown before it ran"
            )


class AnonymizationService:
    """Warm, long-lived facade over the batch and streaming pipelines.

    Args:
        config: the service's :class:`ServiceConfig`; defaults match the
            paper's parameters (``k=5, m=2``).

    Use as a context manager (or call :meth:`close`) so the shared worker
    pool and the job-queue worker are shut down deterministically::

        with AnonymizationService(ServiceConfig(k=5, m=2, jobs=4)) as service:
            result = service.run(dataset)                 # sync
            job = service.submit(AnonymizationRequest(other_dataset))
            ...
            later = job.result()
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        #: Resolved once for the service's lifetime; every request (and the
        #: worker pool initializer) sees this literal backend instead of
        #: re-consulting the environment.
        self.kernels = kernels.resolve(self.config.kernels)
        self._vocabulary = Vocabulary()
        self._engine = Disassociator(
            self.config.engine_params(kernels=self.kernels),
            keep_pool=True,
            vocabulary=self._vocabulary,
        )
        self._lock = threading.RLock()  # serializes request execution
        self._state_lock = threading.Lock()  # guards closed flag + worker spawn
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.max_pending)
        self._worker: Optional[threading.Thread] = None
        self._closed = False
        self._served = 0

    # -- lifecycle ------------------------------------------------------- #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __enter__(self) -> "AnonymizationService":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()

    def close(self, drain: bool = True) -> None:
        """Shut the service down.

        With ``drain=True`` (default) every already-submitted job is
        executed before the worker exits; with ``drain=False`` queued jobs
        are cancelled (their ``result()`` raises
        :class:`~repro.exceptions.ServiceClosedError`).  Either way the
        shared engine (and its worker pool) is closed and later ``run`` /
        ``submit`` / ``close`` calls raise
        :class:`~repro.exceptions.ServiceClosedError`.
        """
        with self._state_lock:
            if self._closed:
                raise ServiceClosedError(
                    "AnonymizationService.close() called twice; "
                    "the service was already closed"
                )
            self._closed = True
            worker = self._worker
        if worker is not None:
            if not drain:
                self._cancel_pending()
            self._queue.put(_SENTINEL)
            worker.join()
        # Anything that raced into the queue behind the sentinel would
        # otherwise wait forever; fail it explicitly.
        self._cancel_pending()
        with self._lock:
            self._engine.close()

    def _cancel_pending(self) -> None:
        """Cancel every job still sitting in the queue (non-blocking)."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _SENTINEL:
                item._cancelled_by_service = True
                item._future.cancel()
            self._queue.task_done()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError(
                "AnonymizationService is closed; create a new service"
            )

    # -- introspection --------------------------------------------------- #
    def stats(self) -> dict:
        """Warm-state snapshot: requests served, vocabulary size, queue depth."""
        return {
            "requests_served": self._served,
            "vocabulary_terms": len(self._vocabulary),
            "kernels": self.kernels,
            "pending_jobs": self._queue.qsize(),
            "closed": self._closed,
        }

    # -- entry points ----------------------------------------------------- #
    def run(self, request, **kwargs) -> PublicationResult:
        """Execute a request synchronously and return its result.

        ``request`` is an :class:`AnonymizationRequest` (no keyword
        arguments allowed then), or any request *source* -- dataset, file
        path, iterable -- with the request's fields (``mode``, ``format``,
        ``delimiter``, ``tag``, ``overrides``) given as keyword arguments.
        """
        request = self._coerce(request, kwargs)
        with self._lock:
            # Checked under the execution lock: a close() racing with this
            # call either finishes first (we raise) or waits for us.
            self._check_open()
            return self._execute(request)

    def submit(
        self,
        request,
        *,
        block: bool = True,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> Job:
        """Enqueue a request and return a :class:`Job` future.

        Jobs are executed FIFO by a single worker thread sharing the warm
        engine, so concurrent submitters get deterministic results.  The
        queue is bounded at ``config.max_pending``: a blocking submit waits
        for space (up to ``timeout``), a non-blocking one raises
        :class:`~repro.exceptions.ServiceSaturatedError` when full.
        """
        request = self._coerce(request, kwargs)
        with self._state_lock:
            self._check_open()
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._worker_loop,
                    name="repro-anonymization-service",
                    daemon=True,
                )
                self._worker.start()
        job = Job(request)
        self._enqueue(job, block, timeout)
        if self._closed:
            # close() finished while we were blocked on a full queue; the
            # worker is gone, so the job would never run.
            job._cancelled_by_service = True
            if job.cancel():
                raise ServiceClosedError(
                    "AnonymizationService was closed while the submit was "
                    "waiting for queue space"
                )
            job._cancelled_by_service = False
        return job

    def _enqueue(self, job: Job, block: bool, timeout: Optional[float]) -> None:
        """Put a job on the bounded queue, waking up if the service closes.

        A blocking put is sliced into short waits so a submitter stuck on a
        full queue notices a concurrent :meth:`close` instead of blocking
        forever against a worker that is shutting down.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._check_open()
            if not block:
                slice_timeout = None
            elif deadline is None:
                slice_timeout = 0.05
            else:
                slice_timeout = min(0.05, deadline - time.monotonic())
            try:
                if block and slice_timeout is not None and slice_timeout > 0:
                    self._queue.put(job, block=True, timeout=slice_timeout)
                else:
                    self._queue.put_nowait(job)
                return
            except queue.Full:
                if not block or (deadline is not None and time.monotonic() >= deadline):
                    raise ServiceSaturatedError(
                        f"job queue is full ({self.config.max_pending} pending); "
                        "retry, raise max_pending, or use a blocking submit"
                    ) from None

    @staticmethod
    def _coerce(request, kwargs) -> AnonymizationRequest:
        """Normalize ``run``/``submit`` input into an :class:`AnonymizationRequest`."""
        if isinstance(request, AnonymizationRequest):
            if kwargs:
                raise ParameterError(
                    "keyword arguments are not allowed when passing an "
                    f"AnonymizationRequest (got {sorted(kwargs)})"
                )
            return request
        request_fields = {
            name: kwargs.pop(name) for name in _REQUEST_FIELDS if name in kwargs
        }
        if kwargs:  # remaining keywords are per-request config overrides
            overrides = dict(request_fields.get("overrides", {}))
            overrides.update(kwargs)
            request_fields["overrides"] = overrides
        return AnonymizationRequest(request, **request_fields)

    # -- execution -------------------------------------------------------- #
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                if not item._future.set_running_or_notify_cancel():
                    continue
                try:
                    with self._lock:
                        result = self._execute(item.request)
                except BaseException as exc:
                    item._future.set_exception(exc)
                else:
                    item._future.set_result(result)
            finally:
                self._queue.task_done()

    def _execute(self, request: AnonymizationRequest) -> PublicationResult:
        config = self.config
        if request.overrides:
            config = config.with_overrides(**request.overrides)
        mode, stream_source, dataset = self._route(request, config)
        if mode == "batch":
            published, report = self._run_batch(dataset, config)
            result = PublicationResult(
                published, report, "batch", config, original=dataset, tag=request.tag
            )
        else:
            published, report = self._run_stream(stream_source, config)
            result = PublicationResult(
                published, report, "stream", config, tag=request.tag
            )
        self._served += 1
        return result

    def _route(self, request: AnonymizationRequest, config: ServiceConfig):
        """Decide batch vs stream; returns ``(mode, stream_source, dataset)``.

        Datasets route on their (known) length; paths and iterables are
        peeked up to ``stream_threshold + 1`` records -- inputs that fit
        under the threshold run in memory, larger ones stream without ever
        materializing more than the peeked prefix.
        """
        if request.is_dataset:
            dataset = request.source
            if request.mode == "stream" or (
                request.mode == "auto" and len(dataset) > config.stream_threshold
            ):
                return "stream", iter(dataset), None
            return "batch", None, dataset
        if request.is_path:
            records: Iterator = iter_records(
                request.source, format=request.format, delimiter=request.delimiter
            )
        else:
            records = iter(request.source)
        if request.mode == "batch":
            return "batch", None, TransactionDataset(records)
        if request.mode == "stream":
            return "stream", records, None
        threshold = config.stream_threshold
        head = list(islice(records, threshold + 1))
        if len(head) <= threshold:
            return "batch", None, TransactionDataset(head)
        return "stream", chain(head, records), None

    def _engine_params(self, config: ServiceConfig) -> AnonymizationParams:
        # Kernels are normalized to the resolved literal ("python"/"numpy"):
        # resolution is deterministic per process and both backends publish
        # identical bytes, so this only skips re-consulting the environment
        # -- and keeps "auto"/None comparable against the warm engine's
        # resolved value, so they never silently defeat warm reuse.
        return config.engine_params(kernels=kernels.resolve(config.kernels))

    def _warm_engine_for(self, params: AnonymizationParams) -> Optional[Disassociator]:
        """The warm engine, when ``params`` can reuse its pool/kernel state."""
        for field_name in _ENGINE_IDENTITY_FIELDS:
            if getattr(params, field_name) != getattr(self._engine.params, field_name):
                return None
        return self._engine

    def _run_batch(self, dataset: TransactionDataset, config: ServiceConfig):
        params = self._engine_params(config)
        engine = self._warm_engine_for(params)
        if engine is not None:
            engine.params = params
            engine.vocabulary = self._vocabulary
        else:
            # Overrides changed the engine's identity (backend/jobs/
            # kernels): run on a transient engine, still sharing the warm
            # vocabulary (interning is output-invariant).
            engine = Disassociator(params, vocabulary=self._vocabulary)
        published = engine.anonymize(dataset)
        return published, engine.last_report

    def _run_stream(self, records, config: ServiceConfig):
        params = self._engine_params(config)
        pipeline = ShardedPipeline(
            params,
            config.stream_params(),
            window_engine=self._warm_engine_for(params),
        )
        published = pipeline.run(records)
        return published, pipeline.last_report


def anonymization_service(**config_fields) -> AnonymizationService:
    """Convenience constructor: ``anonymization_service(k=5, jobs=4, ...)``."""
    return AnonymizationService(ServiceConfig(**config_fields))

"""The long-lived anonymization service facade.

:class:`AnonymizationService` owns, for its whole lifetime, the warm state
that every one-shot entry point used to rebuild per call:

* a pool of warm :class:`~repro.core.engine.Disassociator` engines (one
  per configured service worker, each with its own shared process pool
  spawned lazily and kept across requests via ``keep_pool``),
* one service-lifetime :class:`~repro.core.vocab.Vocabulary`, so the
  encode phase of back-to-back batch requests only interns terms it has
  never seen (interning is append-only and output-invariant -- the same
  property the streaming executor relies on per shard); with more than
  one worker the vocabulary is made thread-safe
  (:meth:`~repro.core.vocab.Vocabulary.make_shared`) so concurrent
  encoders intern behind one lock, and
* a once-resolved vectorized-kernel backend.

Requests (:class:`~repro.service.request.AnonymizationRequest`) auto-route
to the in-memory pipeline or the sharded streaming pipeline on input type
and the configured memory threshold; both paths return the same
:class:`~repro.service.request.PublicationResult`.

Concurrency model: :meth:`run` executes synchronously in the caller's
thread on a checked-out engine; :meth:`submit` enqueues onto a bounded
FIFO queue drained by ``config.workers`` worker threads, each executing on
its own engine.  Up to ``workers`` requests execute concurrently (sync
callers compete with queue workers for the same engine pool).  Every
individual request is deterministic: the vocabulary the requests share is
output-invariant by construction, so neither the interleaving nor the
number of workers can change any publication -- an N-worker service is
bit-for-bit equivalent to a sequential one (equivalence-tested).

Every request -- sync or queued -- is measured into
:class:`~repro.service.metrics.ServiceMetrics` (latency histograms, queue
wait, per-phase time, worker utilization), surfaced by :meth:`stats` and
the HTTP front door's ``GET /stats`` (see :mod:`repro.service.http`).
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from concurrent.futures import CancelledError, Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import fields
from itertools import chain, islice
from pathlib import Path
from typing import Iterator, Optional

from repro import faults
from repro.core import deadline as deadline_mod
from repro.core import kernels
from repro.core.dataset import TransactionDataset
from repro.core.engine import AnonymizationParams, Disassociator
from repro.core.vocab import Vocabulary
from repro.datasets.io import iter_records
from repro.exceptions import (
    DeadlineExceededError,
    FaultInjected,
    ParameterError,
    RetriesExhaustedError,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.service.config import ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.request import AnonymizationRequest, PublicationResult
from repro.stream.executor import ShardedPipeline
from repro.stream.store import IncrementalPipeline

#: Queue item telling a worker thread to exit.
_SENTINEL = object()

#: Engine-identity fields: a per-request override touching one of these
#: cannot reuse a warm engine (its pool/kernel state was built for the
#: service's own values), so the request runs on a transient engine.
_ENGINE_IDENTITY_FIELDS = ("backend", "jobs", "kernels")

#: Keyword arguments of run()/submit() that configure the request itself;
#: every other keyword is treated as a per-request ServiceConfig override.
_REQUEST_FIELDS = tuple(
    spec.name for spec in fields(AnonymizationRequest) if spec.name != "source"
)


class _EngineLease:
    """The engine one executing request holds, swappable mid-request.

    A request checks an engine out of the idle pool for its whole
    execution.  When that engine's worker-process pool crashes
    (``BrokenProcessPool``), the service rebuilds the engine *during* the
    request -- the lease then points at the replacement, and it is the
    replacement (never the crashed engine) that goes back to the idle pool
    in the caller's ``finally``.
    """

    __slots__ = ("engine",)

    def __init__(self, engine: Disassociator):
        self.engine = engine


class Job:
    """A submitted request's future result.

    Thin, read-only wrapper over :class:`concurrent.futures.Future` that
    keeps the originating request attached and translates a shutdown
    cancellation into :class:`~repro.exceptions.ServiceClosedError`.
    """

    def __init__(self, request: AnonymizationRequest):
        self.request = request
        self._future: Future = Future()
        self._cancelled_by_service = False
        self._enqueued_at = time.monotonic()

    def __repr__(self) -> str:
        return f"Job({self.request.mode!r}, {self.state()}, tag={self.request.tag!r})"

    def done(self) -> bool:
        """Whether the job finished (successfully, with an error, or cancelled)."""
        return self._future.done()

    def cancelled(self) -> bool:
        """Whether the job was cancelled before it ran."""
        return self._future.cancelled()

    def running(self) -> bool:
        """Whether the job is currently executing on a worker."""
        return self._future.running()

    def state(self) -> str:
        """The job's lifecycle state: ``pending/running/done/failed/cancelled``.

        Non-blocking; the HTTP front door serializes this into
        ``GET /jobs/<id>`` responses.
        """
        future = self._future
        if future.cancelled():
            return "cancelled"
        if future.done():
            return "failed" if future.exception() is not None else "done"
        if future.running():
            return "running"
        return "pending"

    def cancel(self) -> bool:
        """Try to cancel the job; only possible while it is still queued."""
        return self._future.cancel()

    def result(self, timeout: Optional[float] = None) -> PublicationResult:
        """Block for (and return) the job's :class:`PublicationResult`.

        Raises whatever the execution raised.  A job cancelled by a
        non-draining service shutdown raises
        :class:`~repro.exceptions.ServiceClosedError`; one the caller
        cancelled via :meth:`cancel` raises the plain
        :class:`concurrent.futures.CancelledError`.
        """
        try:
            return self._future.result(timeout)
        except CancelledError:
            if not self._cancelled_by_service:
                raise
            raise ServiceClosedError(
                "job was cancelled by service shutdown before it ran"
            ) from None

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The exception the job raised, or ``None`` (blocks like ``result``)."""
        try:
            return self._future.exception(timeout)
        except CancelledError:
            if not self._cancelled_by_service:
                raise
            return ServiceClosedError(
                "job was cancelled by service shutdown before it ran"
            )


class AnonymizationService:
    """Warm, long-lived facade over the batch and streaming pipelines.

    Args:
        config: the service's :class:`ServiceConfig`; defaults match the
            paper's parameters (``k=5, m=2``).  ``config.workers`` sizes
            the worker pool: that many queued jobs (and sync callers)
            execute concurrently, each on its own warm engine.

    Use as a context manager (or call :meth:`close`) so the engines and
    the job-queue workers are shut down deterministically::

        with AnonymizationService(ServiceConfig(k=5, m=2, workers=2)) as service:
            result = service.run(dataset)                 # sync
            job = service.submit(AnonymizationRequest(other_dataset))
            ...
            later = job.result()
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        #: Resolved once for the service's lifetime; every request (and the
        #: worker pool initializer) sees this literal backend instead of
        #: re-consulting the environment.
        self.kernels = kernels.resolve(self.config.kernels)
        self._vocabulary = Vocabulary()
        if self.config.workers > 1:
            # Concurrent encoders intern behind one lock; single-worker
            # services keep the lock-free path (execution is serialized by
            # the engine pool there).
            self._vocabulary.make_shared()
        self._engines = [
            Disassociator(
                self.config.engine_params(kernels=self.kernels),
                keep_pool=True,
                vocabulary=self._vocabulary,
            )
            for _ in range(self.config.workers)
        ]
        #: The first engine, kept as an attribute for introspection/tests.
        self._engine = self._engines[0]
        #: Idle engines, checked out per executing request.  LIFO: reuse
        #: the most recently warmed engine while traffic is light.
        self._idle: "queue.LifoQueue" = queue.LifoQueue()
        for engine in self._engines:
            self._idle.put(engine)
        self._state_lock = threading.Lock()  # guards closed flag + worker spawn
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.max_pending)
        self._workers: list[threading.Thread] = []
        self._metrics = ServiceMetrics()
        self._closed = False

    # -- lifecycle ------------------------------------------------------- #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __enter__(self) -> "AnonymizationService":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()

    def close(self, drain: bool = True) -> None:
        """Shut the service down.

        With ``drain=True`` (default) every already-submitted job is
        executed before the workers exit; with ``drain=False`` queued jobs
        are cancelled (their ``result()`` raises
        :class:`~repro.exceptions.ServiceClosedError`) and only jobs
        already executing finish.  Either way every engine (and its worker
        pool) is closed -- waiting for in-flight synchronous :meth:`run`
        calls to return their engines first -- and later ``run`` /
        ``submit`` / ``close`` calls raise
        :class:`~repro.exceptions.ServiceClosedError`.
        """
        with self._state_lock:
            if self._closed:
                raise ServiceClosedError(
                    "AnonymizationService.close() called twice; "
                    "the service was already closed"
                )
            self._closed = True
            workers = list(self._workers)
        if workers:
            if not drain:
                self._cancel_pending()
            for _ in workers:
                self._queue.put(_SENTINEL)
            for worker in workers:
                worker.join()
        # Anything that raced into the queue behind the sentinels would
        # otherwise wait forever; fail it explicitly.
        self._cancel_pending()
        # Collect every engine before closing: a blocking get waits for
        # in-flight executions (sync runs included) to check theirs back in.
        for _ in self._engines:
            self._idle.get()
        for engine in self._engines:
            engine.close()

    def _cancel_pending(self) -> None:
        """Cancel every job still sitting in the queue (non-blocking)."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _SENTINEL:
                item._cancelled_by_service = True
                if item._future.cancel():
                    self._metrics.job_cancelled()
            self._queue.task_done()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError(
                "AnonymizationService is closed; create a new service"
            )

    # -- introspection --------------------------------------------------- #
    def stats(self) -> dict:
        """Warm-state and request-metrics snapshot (JSON-safe).

        The same payload regardless of how requests arrived (sync
        :meth:`run`, queued :meth:`submit`, or the HTTP front door, which
        serves this dict verbatim on ``GET /stats``):

        * top-level legacy keys: ``requests_served``, ``vocabulary_terms``,
          ``kernels``, ``pending_jobs``, ``closed``;
        * ``queue``: current depth and capacity (``max_pending``);
        * ``workers``: configured vs started counts, per-worker busy
          seconds and utilization;
        * ``requests`` / ``jobs`` / ``latency`` / ``phases`` from
          :class:`~repro.service.metrics.ServiceMetrics` -- request and
          queue-wait histograms with p50/p90/p99, per-phase accumulated
          seconds, saturation and cancellation counters.

        Every request increments ``requests_served`` exactly once, on the
        entry path that executed it -- auto-routing a request to the
        streaming pipeline (whose windows borrow a warm engine) does not
        double-count.
        """
        with self._state_lock:
            started = len(self._workers)
        payload = self._metrics.snapshot(
            workers_configured=self.config.workers, workers_started=started
        )
        depth = self._queue.qsize()
        payload["queue"] = {"depth": depth, "capacity": self.config.max_pending}
        payload["requests_served"] = payload["requests"]["completed"]
        payload["vocabulary_terms"] = len(self._vocabulary)
        payload["kernels"] = self.kernels
        payload["pending_jobs"] = depth
        payload["closed"] = self._closed
        return payload

    # -- entry points ----------------------------------------------------- #
    def run(self, request, **kwargs) -> PublicationResult:
        """Execute a request synchronously and return its result.

        ``request`` is an :class:`AnonymizationRequest` (no keyword
        arguments allowed then), or any request *source* -- dataset, file
        path, iterable -- with the request's fields (``mode``, ``format``,
        ``delimiter``, ``tag``, ``overrides``) given as keyword arguments.

        Executes on the caller's thread, on an engine checked out from the
        warm pool (waiting for one when all ``config.workers`` engines are
        busy).
        """
        request = self._coerce(request, kwargs)
        lease = _EngineLease(self._checkout_engine())
        try:
            return self._execute(request, lease, worker="caller")
        finally:
            # The lease may point at a rebuilt engine by now; that (healthy)
            # engine is what rejoins the pool.
            self._idle.put(lease.engine)

    def query(self, op: str, params: Optional[dict] = None) -> dict:
        """Run one analytics query against the configured publication store.

        ``op`` names a :class:`~repro.pubstore.QueryEngine` operation
        (``top_terms``, ``cooccurrence_count``, ``containment_ratio``,
        ``rule_confidence``, ``frequent_pairs``, ``lower_bound``,
        ``expected_support``, ``reconstructed_support``, ``describe``);
        ``params`` carries its parameters.  Answers come from the indexed
        store under ``config.pubstore_dir`` -- bit-for-bit what the
        in-memory ``analysis`` helpers would compute over the same
        publication.  Queries execute on the caller's thread (they are
        index lookups, not anonymization runs) against a per-call store
        handle, so they never contend with the engine pool; the
        configured ``default_deadline`` still applies.

        Raises :class:`~repro.exceptions.ParameterError` for a missing
        ``pubstore_dir`` or a malformed op/parameters, and
        :class:`~repro.exceptions.StoreError` for an unbuilt or foreign
        store (the HTTP front door maps these to 400 and 409).
        """
        self._check_open()
        if self.config.pubstore_dir is None:
            raise ParameterError(
                "query requires ServiceConfig.pubstore_dir: point it at a "
                "directory populated by PublicationResult.save_store or by "
                "an incremental run with pubstore_dir set"
            )
        from repro.pubstore import PublicationStore, QueryEngine

        budget = self.config.default_deadline
        query_deadline = deadline_mod.Deadline(budget) if budget is not None else None
        start = time.perf_counter()
        try:
            with deadline_mod.scope(query_deadline):
                with PublicationStore(self.config.pubstore_dir) as store:
                    return QueryEngine(store).execute(op, params)
        finally:
            self._metrics.query_finished(time.perf_counter() - start)

    def submit(
        self,
        request,
        *,
        block: bool = True,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> Job:
        """Enqueue a request and return a :class:`Job` future.

        Jobs are picked up FIFO by ``config.workers`` worker threads, each
        executing on its own warm engine; results are deterministic per
        request regardless of the worker count or interleaving.  The queue
        is bounded at ``config.max_pending``: a blocking submit waits for
        space (up to ``timeout``), a non-blocking one raises
        :class:`~repro.exceptions.ServiceSaturatedError` when full.
        """
        request = self._coerce(request, kwargs)
        with self._state_lock:
            self._check_open()
            if not self._workers:
                for index in range(self.config.workers):
                    worker = threading.Thread(
                        target=self._worker_loop,
                        args=(f"worker-{index}",),
                        name=f"repro-anonymization-service-{index}",
                        daemon=True,
                    )
                    worker.start()
                    self._workers.append(worker)
        job = Job(request)
        self._enqueue(job, block, timeout)
        self._metrics.job_submitted()
        if self._closed:
            # close() finished while we were blocked on a full queue; the
            # workers are gone, so the job would never run.
            job._cancelled_by_service = True
            if job.cancel():
                self._metrics.job_cancelled()
                raise ServiceClosedError(
                    "AnonymizationService was closed while the submit was "
                    "waiting for queue space"
                )
            job._cancelled_by_service = False
        return job

    def _checkout_engine(self) -> Disassociator:
        """Borrow an idle engine, waking up if the service closes meanwhile."""
        while True:
            self._check_open()
            try:
                return self._idle.get(timeout=0.05)
            except queue.Empty:
                continue

    def _enqueue(self, job: Job, block: bool, timeout: Optional[float]) -> None:
        """Put a job on the bounded queue, waking up if the service closes.

        A blocking put is sliced into short waits so a submitter stuck on a
        full queue notices a concurrent :meth:`close` instead of blocking
        forever against workers that are shutting down.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._check_open()
            if not block:
                slice_timeout = None
            elif deadline is None:
                slice_timeout = 0.05
            else:
                slice_timeout = min(0.05, deadline - time.monotonic())
            try:
                if block and slice_timeout is not None and slice_timeout > 0:
                    job._enqueued_at = time.monotonic()
                    self._queue.put(job, block=True, timeout=slice_timeout)
                else:
                    job._enqueued_at = time.monotonic()
                    self._queue.put_nowait(job)
                return
            except queue.Full:
                if not block or (deadline is not None and time.monotonic() >= deadline):
                    self._metrics.submit_rejected()
                    raise ServiceSaturatedError(
                        f"job queue is full ({self.config.max_pending} pending); "
                        "retry, raise max_pending, or use a blocking submit"
                    ) from None

    @staticmethod
    def _coerce(request, kwargs) -> AnonymizationRequest:
        """Normalize ``run``/``submit`` input into an :class:`AnonymizationRequest`."""
        if isinstance(request, AnonymizationRequest):
            if kwargs:
                raise ParameterError(
                    "keyword arguments are not allowed when passing an "
                    f"AnonymizationRequest (got {sorted(kwargs)})"
                )
            return request
        request_fields = {
            name: kwargs.pop(name) for name in _REQUEST_FIELDS if name in kwargs
        }
        if kwargs:  # remaining keywords are per-request config overrides
            overrides = dict(request_fields.get("overrides", {}))
            overrides.update(kwargs)
            request_fields["overrides"] = overrides
        return AnonymizationRequest(request, **request_fields)

    # -- execution -------------------------------------------------------- #
    def _worker_loop(self, name: str) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                if not item._future.set_running_or_notify_cancel():
                    self._metrics.job_cancelled()
                    continue
                queue_wait = time.monotonic() - item._enqueued_at
                lease = _EngineLease(self._idle.get())
                try:
                    try:
                        result = self._execute(
                            item.request, lease, worker=name, queue_wait=queue_wait
                        )
                    except BaseException as exc:
                        item._future.set_exception(exc)
                    else:
                        item._future.set_result(result)
                finally:
                    # A crashed engine was already replaced on the lease;
                    # only healthy engines rejoin the pool.
                    self._idle.put(lease.engine)
            finally:
                self._queue.task_done()

    def _execute(
        self,
        request: AnonymizationRequest,
        lease: _EngineLease,
        *,
        worker: str,
        queue_wait: Optional[float] = None,
    ) -> PublicationResult:
        config = self.config
        if request.overrides:
            config = config.with_overrides(**request.overrides)
        self._metrics.request_started()
        start = time.perf_counter()
        # One idempotency token per *request* (not per attempt): a delta
        # whose mutation committed before a transient crash is not
        # re-applied by the retry -- the store recognizes the token and the
        # retry only finishes windows and publication.  A client-supplied
        # delta_id extends the same guarantee across request boundaries
        # (crash recovery, at-most-once re-submission).
        state: dict = {
            "mode": None,
            "report": None,
            "delta_id": request.delta_id or uuid.uuid4().hex,
        }
        error = True
        try:
            result = self._execute_with_retry(
                request, config, lease, queue_wait=queue_wait, state=state
            )
            error = False
            return result
        except DeadlineExceededError:
            self._metrics.deadline_exceeded()
            raise
        finally:
            report = state["report"]
            self._metrics.request_finished(
                seconds=time.perf_counter() - start,
                mode=state["mode"],
                error=error,
                queue_wait=queue_wait,
                worker=worker,
                phase_timings=report.phase_timings() if report is not None else None,
            )

    def _execute_with_retry(
        self,
        request: AnonymizationRequest,
        config: ServiceConfig,
        lease: _EngineLease,
        *,
        queue_wait: Optional[float],
        state: dict,
    ) -> PublicationResult:
        """Run the request under its deadline and the service retry policy.

        The deadline is anchored at *enqueue* time (queue wait spends
        budget), enforced here at dequeue and then cooperatively at every
        pipeline phase boundary through the ambient
        :mod:`repro.core.deadline` scope.  Transient failures -- a crashed
        worker-process pool (the engine is rebuilt on the lease first) or
        an injected transient fault -- are retried with exponential
        backoff, but only when the request's source can be re-read from
        scratch (a file path or an in-memory dataset; a half-consumed
        iterable cannot be safely replayed).  The final transient failure
        surfaces as :class:`RetriesExhaustedError` with the cause chained.
        """
        policy = config.retry
        budget = (
            request.deadline
            if request.deadline is not None
            else config.default_deadline
        )
        request_deadline = None
        if budget is not None:
            anchor = time.monotonic() - (queue_wait or 0.0)
            request_deadline = deadline_mod.Deadline(budget, anchor=anchor)
            # Enforced at dequeue: a job that already overstayed its budget
            # in the queue fails immediately instead of burning a worker.
            request_deadline.check("service.dequeue")
        failed_attempts = 0
        while True:
            try:
                faults.check("service.execute")
                with deadline_mod.scope(request_deadline):
                    return self._execute_once(request, config, lease, state)
            except (BrokenProcessPool, FaultInjected) as exc:
                if isinstance(exc, BrokenProcessPool):
                    # Never park a crashed engine back in the pool: replace
                    # it on the lease before deciding whether to retry.
                    self._rebuild_engine(lease)
                failed_attempts += 1
                if not self._transient(exc) or not self._replayable(request):
                    raise
                if failed_attempts >= policy.attempts:
                    self._metrics.retries_exhausted()
                    raise RetriesExhaustedError(
                        f"request failed transiently {failed_attempts} time(s); "
                        f"retry policy allows {policy.attempts} attempt(s) "
                        f"({exc})",
                        attempts=failed_attempts,
                    ) from exc
                delay = policy.delay(failed_attempts)
                if request_deadline is not None:
                    # Sleeping past the deadline would turn a retryable
                    # blip into a guaranteed deadline failure; expire now
                    # if no budget is left for another attempt.
                    request_deadline.check("service.retry")
                    delay = min(delay, max(request_deadline.remaining(), 0.0))
                self._metrics.request_retried()
                if delay > 0:
                    time.sleep(delay)

    def _execute_once(
        self,
        request: AnonymizationRequest,
        config: ServiceConfig,
        lease: _EngineLease,
        state: dict,
    ) -> PublicationResult:
        """One routing + execution attempt (state carries mode/report out)."""
        state["mode"], state["report"] = None, None
        if request.mode == "delta":
            state["mode"] = "delta"
            published, report = self._run_delta(request, config, lease.engine, state)
            state["report"] = report
            return PublicationResult(
                published, report, "delta", config, tag=request.tag
            )
        mode, stream_source, dataset = self._route(request, config)
        state["mode"] = mode
        if mode == "batch":
            published, report = self._run_batch(dataset, config, lease.engine)
            state["report"] = report
            return PublicationResult(
                published, report, "batch", config, original=dataset, tag=request.tag
            )
        published, report = self._run_stream(
            stream_source, config, lease.engine, resume=request.resume
        )
        state["report"] = report
        return PublicationResult(published, report, "stream", config, tag=request.tag)

    @staticmethod
    def _transient(exc: BaseException) -> bool:
        """Whether a failure is worth retrying on a healthy engine."""
        if isinstance(exc, BrokenProcessPool):
            return True
        if isinstance(exc, FaultInjected):
            return exc.transient
        return False

    @staticmethod
    def _replayable(request: AnonymizationRequest) -> bool:
        """Whether the request's input can be re-read for a retry.

        Paths are re-opened, and datasets and in-memory sequences (e.g.
        the record lists the HTTP front door posts) re-iterated from
        scratch; a plain one-shot iterable may already be partially
        consumed by the failed attempt, so replaying it would silently
        anonymize a truncated stream.  A delta request must replay both
        its append source and its delete list (``None`` -- an empty side
        of the delta -- is trivially replayable).
        """

        def safe(value) -> bool:
            return value is None or isinstance(
                value, (str, Path, TransactionDataset, list, tuple)
            )

        return safe(request.source) and safe(request.delete)

    def _rebuild_engine(self, lease: _EngineLease) -> None:
        """Replace the lease's crashed engine with a fresh warm one.

        The crashed engine is closed best-effort (its pool may already be
        gone), a replacement sharing the service vocabulary takes its slot
        in the engine list, and the lease is repointed -- so whatever the
        request's outcome, the idle pool only ever gets healthy engines
        back.
        """
        crashed = lease.engine
        try:
            crashed.close()
        except Exception:  # already half-dead; nothing useful to do
            pass
        fresh = Disassociator(
            self.config.engine_params(kernels=self.kernels),
            keep_pool=True,
            vocabulary=self._vocabulary,
        )
        with self._state_lock:
            for index, engine in enumerate(self._engines):
                if engine is crashed:
                    self._engines[index] = fresh
                    break
            if self._engine is crashed:
                self._engine = fresh
        lease.engine = fresh
        self._metrics.engine_rebuilt()

    def _route(self, request: AnonymizationRequest, config: ServiceConfig):
        """Decide batch vs stream; returns ``(mode, stream_source, dataset)``.

        Datasets route on their (known) length; paths and iterables are
        peeked up to ``stream_threshold + 1`` records -- inputs that fit
        under the threshold run in memory, larger ones stream without ever
        materializing more than the peeked prefix.
        """
        if request.is_dataset:
            dataset = request.source
            if request.mode == "stream" or (
                request.mode == "auto" and len(dataset) > config.stream_threshold
            ):
                return "stream", iter(dataset), None
            return "batch", None, dataset
        if request.is_path:
            records: Iterator = iter_records(
                request.source, format=request.format, delimiter=request.delimiter
            )
        else:
            records = iter(request.source)
        if request.mode == "batch":
            return "batch", None, TransactionDataset(records)
        if request.mode == "stream":
            return "stream", records, None
        threshold = config.stream_threshold
        head = list(islice(records, threshold + 1))
        if len(head) <= threshold:
            return "batch", None, TransactionDataset(head)
        return "stream", chain(head, records), None

    def _engine_params(self, config: ServiceConfig) -> AnonymizationParams:
        # Kernels are normalized to the resolved literal ("python"/"numpy"):
        # resolution is deterministic per process and both backends publish
        # identical bytes, so this only skips re-consulting the environment
        # -- and keeps "auto"/None comparable against the warm engine's
        # resolved value, so they never silently defeat warm reuse.
        return config.engine_params(kernels=kernels.resolve(config.kernels))

    def _warm_engine_for(
        self, params: AnonymizationParams, engine: Optional[Disassociator] = None
    ) -> Optional[Disassociator]:
        """The warm engine, when ``params`` can reuse its pool/kernel state."""
        if engine is None:
            engine = self._engine
        for field_name in _ENGINE_IDENTITY_FIELDS:
            if getattr(params, field_name) != getattr(engine.params, field_name):
                return None
        return engine

    def _run_batch(
        self, dataset: TransactionDataset, config: ServiceConfig, engine: Disassociator
    ):
        params = self._engine_params(config)
        warm = self._warm_engine_for(params, engine)
        if warm is not None:
            engine = warm
            engine.params = params
            engine.vocabulary = self._vocabulary
        else:
            # Overrides changed the engine's identity (backend/jobs/
            # kernels): run on a transient engine, still sharing the warm
            # vocabulary (interning is output-invariant).
            engine = Disassociator(params, vocabulary=self._vocabulary)
        published = engine.anonymize(dataset)
        return published, engine.last_report

    def _run_stream(
        self,
        records,
        config: ServiceConfig,
        engine: Disassociator,
        *,
        resume: bool = False,
    ):
        params = self._engine_params(config)
        pipeline = ShardedPipeline(
            params,
            config.stream_params(),
            window_engine=self._warm_engine_for(params, engine),
        )
        published = pipeline.run(records, resume=resume)
        return published, pipeline.last_report

    def _run_delta(
        self,
        request: AnonymizationRequest,
        config: ServiceConfig,
        engine: Disassociator,
        state: dict,
    ):
        """Apply the request as one delta of the persistent shard store.

        Appends come from ``request.source`` (``None``: none), deletes from
        ``request.delete``; both accept the same shapes as any request
        source.  The recomputed windows run on the service's warm engine
        whenever the merged config can reuse it, exactly like streamed
        requests, and the request-scoped ``delta_id`` makes transparent
        retries of a transiently failed delta apply the mutation at most
        once.
        """
        params = self._engine_params(config)
        pipeline = IncrementalPipeline(
            params,
            config.stream_params(),
            window_engine=self._warm_engine_for(params, engine),
        )
        published = pipeline.run(
            append=self._delta_records(request.source, request),
            delete=self._delta_records(request.delete, request),
            delta_id=state["delta_id"],
        )
        return published, pipeline.last_report

    @staticmethod
    def _delta_records(source, request: AnonymizationRequest) -> list:
        """Materialize one side of a delta into a record list (``None``: empty)."""
        if source is None:
            return []
        if isinstance(source, TransactionDataset):
            return list(source.records)
        if isinstance(source, (str, Path)):
            return list(
                iter_records(source, format=request.format, delimiter=request.delimiter)
            )
        return list(source)


def anonymization_service(**config_fields) -> AnonymizationService:
    """Convenience constructor: ``anonymization_service(k=5, jobs=4, ...)``."""
    return AnonymizationService(ServiceConfig(**config_fields))

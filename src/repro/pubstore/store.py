"""The persistent, indexed publication store.

:class:`PublicationStore` is a single-file stdlib-SQLite database in the
:class:`~repro.stream.ShardStore` style -- WAL journaling, explicit
transaction boundaries, a versioned schema and a fingerprint-validated
identity -- holding one disassociated publication in fully indexed form
(see :mod:`repro.pubstore.schema` for the layout).  It serves two jobs:

* **queries without scans** -- ``top_terms``, itemset supports,
  frequent pairs and the :class:`~repro.analysis.SupportEstimator`
  bounds answer from the inverted indexes and per-term aggregates, so
  repeated analyst queries cost index lookups instead of a pass over
  every published chunk;
* **faithful reload** -- :meth:`load_publication` rebuilds the exact
  :class:`~repro.core.clusters.DisassociatedDataset` (same cluster
  tree, same chunk and sub-record order, same contribution order), so
  anything the indexes cannot answer falls back to the in-memory path
  with bit-for-bit identical results.

Durability mirrors the shard store: a (re)build is **one** atomic
transaction -- old rows out, new rows in, meta restamped, commit -- so a
crash mid-build rolls back to the previous consistent snapshot and the
next build simply runs again.  The ``generation`` meta slot is stamped
by the builder (:class:`~repro.stream.IncrementalPipeline` passes the
shard store's generation), which is what keeps a pubstore from ever
being ahead of or behind the publication it indexes.  Faults and
deadlines are honored at the ``pubstore.open`` / ``pubstore.build`` /
``pubstore.query`` phase boundaries, so the resilience harness drives
this store like every other subsystem.
"""

from __future__ import annotations

import json
import sqlite3
import time
from collections import defaultdict
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro import faults
from repro.core import deadline
from repro.core.clusters import (
    DisassociatedDataset,
    JointCluster,
    RecordChunk,
    SharedChunk,
    SimpleCluster,
    TermChunk,
    paused_gc,
)
from repro.exceptions import StoreError
from repro.pubstore.schema import (
    DATA_TABLES,
    PUBSTORE_LOCK_NAME,
    PUBSTORE_VERSION,
    _SCHEMA,
    publication_fingerprint,
    pubstore_path,
)
from repro.pubstore.writer import build_rows, insert_rows

PathLike = Union[str, Path]

#: Default seconds an exclusive open waits for the writer lock before
#: failing with :class:`~repro.exceptions.StoreError`.
LOCK_TIMEOUT = 30.0


def _marks(values: Sequence) -> str:
    """A ``?,?,...`` placeholder list sized to ``values``."""
    return ",".join("?" * len(values))


class PublicationStore:
    """One publication, persisted and indexed, in a single SQLite file.

    Open is cheap (schema is idempotent); writes go through
    :meth:`build`, which replaces the whole snapshot atomically.  All
    methods raise :class:`~repro.exceptions.StoreError` on an unusable
    or foreign database.  Use as a context manager (or call
    :meth:`close`).

    ``exclusive=True`` acquires an advisory writer lock (a write
    transaction on the sibling ``publication.lock`` file) held until
    :meth:`close`, serializing rebuilds across threads and processes;
    read-only query opens stay lock-free.
    """

    def __init__(
        self,
        store_dir: PathLike,
        *,
        exclusive: bool = False,
        lock_timeout: float = LOCK_TIMEOUT,
    ):
        faults.check("pubstore.open")
        deadline.check("pubstore.open")
        self.directory = Path(store_dir)
        self._lock_db: Optional[sqlite3.Connection] = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot create publication store directory {store_dir}: {exc}"
            ) from exc
        self.path = pubstore_path(self.directory)
        if exclusive:
            self._acquire_lock(lock_timeout)
        try:
            # Autocommit mode, same as ShardStore: every transaction
            # boundary below is explicit and deliberate.
            self._db = sqlite3.connect(self.path, isolation_level=None)
        except sqlite3.Error as exc:
            self._release_lock()
            raise StoreError(f"cannot open publication store {self.path}: {exc}") from exc
        try:
            self._db.execute("PRAGMA journal_mode=WAL").fetchone()
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.executescript(_SCHEMA)
        except sqlite3.Error as exc:
            self._db.close()
            self._release_lock()
            raise StoreError(f"cannot open publication store {self.path}: {exc}") from exc

    def _acquire_lock(self, timeout: float) -> None:
        """Take the writer lock, waiting up to ``timeout`` seconds."""
        try:
            self._lock_db = sqlite3.connect(
                self.directory / PUBSTORE_LOCK_NAME, isolation_level=None
            )
            self._lock_db.execute("PRAGMA busy_timeout=100")
            give_up = time.monotonic() + timeout
            while True:
                try:
                    self._lock_db.execute("BEGIN IMMEDIATE")
                    return
                except sqlite3.OperationalError as exc:
                    if "lock" not in str(exc) and "busy" not in str(exc):
                        raise
                    deadline.check("pubstore.open")
                    if time.monotonic() >= give_up:
                        raise StoreError(
                            f"another writer holds the lock on publication store "
                            f"{self.path} (waited {timeout:.1f}s); rebuilds "
                            "serialize per store"
                        ) from None
        except sqlite3.Error as exc:
            self._release_lock()
            raise StoreError(
                f"cannot lock publication store {self.path}: {exc}"
            ) from exc
        except BaseException:
            self._release_lock()
            raise

    def _release_lock(self) -> None:
        """Drop the writer lock (no-op for read-only opens)."""
        if self._lock_db is None:
            return
        try:
            self._lock_db.close()  # closing rolls back the open transaction
        except sqlite3.Error:  # pragma: no cover - defensive
            pass
        self._lock_db = None

    # -- lifecycle ------------------------------------------------------- #
    def __enter__(self) -> "PublicationStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the database connection and release the writer lock."""
        self._db.close()
        self._release_lock()

    # -- meta ------------------------------------------------------------ #
    def _meta(self, key: str) -> Optional[str]:
        row = self._db.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: str) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
        )

    def _meta_int(self, key: str) -> int:
        value = self._meta(key)
        if value is None:
            raise StoreError(
                f"publication store {self.path} has no {key!r} metadata; "
                "the store was never built"
            )
        return int(value)

    @property
    def initialized(self) -> bool:
        """Whether a publication has ever been committed into this store."""
        return self._meta("built") == "1"

    @property
    def generation(self) -> int:
        """The generation stamp the current snapshot was built from."""
        value = self._meta("generation")
        return 0 if value is None else int(value)

    @property
    def fingerprint(self) -> Optional[str]:
        """Content fingerprint of the stored publication's canonical JSON."""
        return self._meta("fingerprint")

    @property
    def source(self) -> Optional[dict]:
        """The identity of the pipeline run that built the snapshot, if any.

        :class:`~repro.stream.IncrementalPipeline` stamps its run
        fingerprint here so a refresh can tell "same publication, new
        generation" apart from "someone pointed ``pubstore_dir`` at a
        store built from a different run".
        """
        raw = self._meta("source")
        if raw is None:
            return None
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise StoreError(f"malformed source in {self.path}: {exc}") from exc

    @property
    def k(self) -> int:
        """The ``k`` the stored publication guarantees."""
        return self._meta_int("k")

    @property
    def m(self) -> int:
        """The ``m`` the stored publication guarantees."""
        return self._meta_int("m")

    @property
    def total_records(self) -> int:
        """Number of original records represented by the publication."""
        return self._meta_int("total_records")

    @property
    def total_subrecords(self) -> int:
        """Number of published sub-records across all chunks."""
        return self._meta_int("total_subrecords")

    @property
    def chunk_rows(self) -> int:
        """Size of the publication's chunk dataset.

        Sub-records plus one singleton row per term-chunk term --
        exactly ``len(published.chunk_dataset())``, the denominator of
        ``containment_ratio``.
        """
        return self._meta_int("chunk_rows")

    def describe(self) -> dict:
        """Operator-facing snapshot of the store's identity and totals."""
        self._require_built()
        return {
            "path": str(self.path),
            "version": int(self._meta("version") or 0),
            "generation": self.generation,
            "fingerprint": self.fingerprint,
            "k": self.k,
            "m": self.m,
            "total_records": self.total_records,
            "total_subrecords": self.total_subrecords,
            "chunk_rows": self.chunk_rows,
        }

    # -- build ----------------------------------------------------------- #
    @classmethod
    def from_publication(
        cls,
        published: DisassociatedDataset,
        store_dir: PathLike,
        *,
        generation: int = 0,
        payload: Optional[dict] = None,
        source: Optional[dict] = None,
        lock_timeout: float = LOCK_TIMEOUT,
    ) -> "PublicationStore":
        """Build a store for ``published`` under ``store_dir`` and return it open."""
        store = cls(store_dir, exclusive=True, lock_timeout=lock_timeout)
        try:
            store.build(
                published, generation=generation, payload=payload, source=source
            )
        except BaseException:
            store.close()
            raise
        return store

    def build(
        self,
        published: DisassociatedDataset,
        *,
        generation: int = 0,
        payload: Optional[dict] = None,
        source: Optional[dict] = None,
    ) -> None:
        """(Re)index ``published`` into the store as one atomic snapshot.

        The whole build -- clearing the previous snapshot, inserting
        every row, restamping the meta header -- commits as a single
        transaction: a crash at any instant leaves the *previous*
        committed snapshot (or an unbuilt store) behind, never a half
        index.  ``payload`` may pass a precomputed ``to_dict()`` form to
        avoid serializing the publication twice; ``generation`` and
        ``source`` stamp which upstream state the snapshot reflects.
        """
        faults.check("pubstore.build")
        deadline.check("pubstore.build")
        if payload is None:
            payload = published.to_dict()
        fingerprint = publication_fingerprint(payload)
        with paused_gc():
            builder = build_rows(published)
        deadline.check("pubstore.build")
        self._db.execute("BEGIN IMMEDIATE")
        try:
            for table in DATA_TABLES:
                self._db.execute(f"DELETE FROM {table}")
            derived = insert_rows(self._db, builder, published)
            self._set_meta("version", str(PUBSTORE_VERSION))
            self._set_meta("fingerprint", fingerprint)
            self._set_meta("generation", str(int(generation)))
            self._set_meta("source", json.dumps(source, sort_keys=True))
            for key, value in derived.items():
                self._set_meta(key, value)
            self._set_meta("built", "1")
            # A second injection point *inside* the transaction: the
            # crash-during-index-build test arms it to prove a mid-build
            # death rolls back to the previous consistent snapshot.
            faults.check("pubstore.build")
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise

    # -- validation ------------------------------------------------------ #
    def _require_built(self) -> None:
        if not self.initialized:
            raise StoreError(
                f"publication store {self.path} holds no publication; "
                "build it first (PublicationResult.save_store, "
                "PublicationStore.from_publication, or an incremental run "
                "with pubstore_dir set)"
            )

    def validate(self) -> None:
        """Refuse a store this library version cannot read, or an unbuilt one."""
        faults.check("pubstore.query")
        deadline.check("pubstore.query")
        version = self._meta("version")
        if version is not None and version != str(PUBSTORE_VERSION):
            raise StoreError(
                f"publication store {self.path} has version {version!r}, "
                f"this library reads version {PUBSTORE_VERSION}"
            )
        self._require_built()

    # -- term lookups ---------------------------------------------------- #
    def term_ids(self, terms: Iterable[str]) -> Dict[str, int]:
        """Map known terms to their interned ids (unknown terms are absent)."""
        wanted = sorted({str(term) for term in terms})
        if not wanted:
            return {}
        rows = self._db.execute(
            f"SELECT term, id FROM terms WHERE term IN ({_marks(wanted)})", wanted
        ).fetchall()
        return dict(rows)

    # -- aggregate queries ----------------------------------------------- #
    def top_terms(self, count: int = 10) -> List[Tuple[str, int]]:
        """The ``count`` most supported terms from the per-term aggregates.

        Same ordering contract as :func:`repro.analysis.top_terms`:
        support descending, then term ascending (SQLite's default BINARY
        collation on UTF-8 text sorts exactly like Python's ``str``
        comparison, code point by code point).
        """
        self._require_built()
        rows = self._db.execute(
            "SELECT t.term, s.total FROM term_stats s"
            " JOIN terms t ON t.id = s.term"
            " ORDER BY s.total DESC, t.term ASC LIMIT ?",
            (max(0, int(count)),),
        ).fetchall()
        return [(term, support) for term, support in rows]

    def support(self, itemset: Iterable) -> int:
        """Support of ``itemset`` in the publication's chunk dataset.

        Matches ``published.chunk_dataset().support(itemset)`` case for
        case: the empty itemset counts every chunk-dataset row, a single
        term reads the per-term aggregate, and a larger itemset
        intersects the term->sub-record postings.
        """
        self._require_built()
        items = frozenset(str(term) for term in itemset)
        if not items:
            return self.chunk_rows
        ids = self.term_ids(items)
        if len(ids) < len(items):
            return 0
        if len(ids) == 1:
            (tid,) = ids.values()
            row = self._db.execute(
                "SELECT total FROM term_stats WHERE term = ?", (tid,)
            ).fetchone()
            return 0 if row is None else int(row[0])
        wanted = sorted(ids.values())
        # Intersect posting lists rarest-first: scan the shortest list and
        # point-look-up the rest on the (term, subrecord) primary key.
        # CROSS JOIN pins that join order against the planner.
        stats = dict(
            self._db.execute(
                f"SELECT term, chunk_support FROM term_stats"
                f" WHERE term IN ({_marks(wanted)})",
                wanted,
            ).fetchall()
        )
        ordered = sorted(wanted, key=lambda tid: (stats.get(tid, 0), tid))
        joins = " ".join(
            f"CROSS JOIN postings p{i}"
            f" ON p{i}.subrecord = p0.subrecord AND p{i}.term = ?"
            for i in range(1, len(ordered))
        )
        row = self._db.execute(
            f"SELECT COUNT(*) FROM postings p0 {joins} WHERE p0.term = ?",
            (*ordered[1:], ordered[0]),
        ).fetchone()
        return int(row[0])

    def lower_bound_support(self, itemset: Iterable) -> int:
        """Provable lower bound on the original support of ``itemset``.

        Identical to
        :meth:`~repro.core.clusters.DisassociatedDataset.lower_bound_support`:
        for non-empty itemsets it coincides with chunk-dataset
        :meth:`support`; the empty itemset counts published sub-records
        only (term-chunk terms contribute no sub-record).
        """
        self._require_built()
        items = frozenset(str(term) for term in itemset)
        if not items:
            return self.total_subrecords
        return self.support(items)

    def pairs_with_min_support(
        self, min_support: int
    ) -> List[Tuple[Tuple[str, str], int]]:
        """All term pairs whose chunk-dataset support is >= ``min_support``.

        Unordered; :class:`~repro.pubstore.QueryEngine` applies the
        oracle's ``(-support, pair)`` sort.
        """
        self._require_built()
        rows = self._db.execute(
            "SELECT ta.term, tb.term, p.support FROM pair_stats p"
            " JOIN terms ta ON ta.id = p.a JOIN terms tb ON tb.id = p.b"
            " WHERE p.support >= ?",
            (int(min_support),),
        ).fetchall()
        return [((a, b), support) for a, b, support in rows]

    # -- expected-support navigation ------------------------------------- #
    def candidate_tops(self, term_ids: Iterable[int], size: int) -> List[int]:
        """Top-level clusters whose full domain covers all ``size`` terms.

        Ordered ascending by cluster id -- the pre-order walk ids make
        that exactly the publication's top-level cluster order, so the
        store-backed estimator sums per-cluster contributions in the
        same order as the in-memory oracle.
        """
        wanted = sorted(set(term_ids))
        rows = self._db.execute(
            f"SELECT top FROM cluster_terms WHERE term IN ({_marks(wanted)})"
            " GROUP BY top HAVING COUNT(*) = ? ORDER BY top",
            (*wanted, size),
        ).fetchall()
        return [top for (top,) in rows]

    def top_size(self, top: int) -> int:
        """Published record count of a top-level cluster."""
        row = self._db.execute(
            "SELECT size FROM clusters WHERE id = ?", (top,)
        ).fetchone()
        if row is None:
            raise StoreError(f"publication store {self.path}: unknown cluster {top}")
        return int(row[0])

    def chunk_parts(
        self, top: int, term_ids: Iterable[int]
    ) -> List[Tuple[int, Set[int]]]:
        """Per-chunk projections of an itemset inside one top-level cluster.

        Returns ``(chunk_id, part)`` pairs -- ``part`` being the subset
        of ``term_ids`` in that chunk's domain -- for every chunk with a
        non-empty part, ordered by the estimator's enumeration ordinal
        (``eord``): shared chunks in pre-order, then leaf record chunks.
        """
        wanted = sorted(set(term_ids))
        rows = self._db.execute(
            "SELECT ct.chunk, ct.term FROM chunk_terms ct"
            " JOIN chunks c ON c.id = ct.chunk"
            f" WHERE ct.top = ? AND ct.term IN ({_marks(wanted)})"
            " ORDER BY c.eord",
            (top, *wanted),
        ).fetchall()
        ordered: List[Tuple[int, Set[int]]] = []
        for chunk, term in rows:
            if ordered and ordered[-1][0] == chunk:
                ordered[-1][1].add(term)
            else:
                ordered.append((chunk, {term}))
        return ordered

    def matching_count(self, chunk: int, part: Iterable[int]) -> int:
        """How many of a chunk's sub-records contain every term in ``part``."""
        wanted = sorted(set(part))
        if len(wanted) == 1:
            row = self._db.execute(
                "SELECT COUNT(*) FROM postings WHERE chunk = ? AND term = ?",
                (chunk, wanted[0]),
            ).fetchone()
            return int(row[0])
        row = self._db.execute(
            "SELECT COUNT(*) FROM ("
            f"SELECT subrecord FROM postings WHERE chunk = ? AND term IN ({_marks(wanted)})"
            " GROUP BY subrecord HAVING COUNT(*) = ?)",
            (chunk, *wanted, len(wanted)),
        ).fetchone()
        return int(row[0])

    def term_chunk_present(self, top: int, term_ids: Iterable[int]) -> Set[int]:
        """Which of ``term_ids`` appear in the cluster's leaf term chunks."""
        wanted = sorted(set(term_ids))
        if not wanted:
            return set()
        rows = self._db.execute(
            "SELECT DISTINCT term FROM term_chunks"
            f" WHERE top = ? AND term IN ({_marks(wanted)})",
            (top, *wanted),
        ).fetchall()
        return {term for (term,) in rows}

    # -- faithful reload -------------------------------------------------- #
    def load_publication(self) -> DisassociatedDataset:
        """Rebuild the exact stored publication.

        The reload preserves every load-bearing order -- top-level
        cluster list, child order inside joints, chunk order inside
        clusters, sub-record order inside chunks, contribution order
        inside shared chunks -- so ``load_publication().to_dict()`` is
        identical to the original publication's ``to_dict()`` and every
        in-memory analysis over the reload matches the original
        bit-for-bit.
        """
        self._require_built()
        db = self._db
        with paused_gc():
            terms: Dict[int, str] = dict(db.execute("SELECT id, term FROM terms"))
            sub_terms: Dict[int, List[str]] = defaultdict(list)
            for tid, subrecord in db.execute("SELECT term, subrecord FROM postings"):
                sub_terms[subrecord].append(terms[tid])
            chunk_subs: Dict[int, List[FrozenSet[str]]] = defaultdict(list)
            for sid, chunk in db.execute(
                "SELECT id, chunk FROM subrecords ORDER BY chunk, ord"
            ):
                chunk_subs[chunk].append(frozenset(sub_terms.get(sid, ())))
            chunk_domain: Dict[int, Set[str]] = defaultdict(set)
            for tid, chunk in db.execute("SELECT term, chunk FROM chunk_terms"):
                chunk_domain[chunk].add(terms[tid])
            contribs: Dict[int, Dict[str, int]] = defaultdict(dict)
            for chunk, label, count in db.execute(
                "SELECT chunk, label, count FROM contributions ORDER BY chunk, ord"
            ):
                contribs[chunk][label] = int(count)
            chunks_by_cluster: Dict[int, List[RecordChunk]] = defaultdict(list)
            for chunk_id, cluster, kind in db.execute(
                "SELECT id, cluster, kind FROM chunks ORDER BY cluster, ord"
            ):
                domain = frozenset(chunk_domain.get(chunk_id, ()))
                subrecords = chunk_subs.get(chunk_id, [])
                if kind == "shared":
                    built: RecordChunk = SharedChunk._from_normalized(
                        domain, subrecords, contribs.get(chunk_id, {})
                    )
                else:
                    built = RecordChunk._from_normalized(domain, subrecords)
                chunks_by_cluster[cluster].append(built)
            term_chunk_terms: Dict[int, Set[str]] = defaultdict(set)
            for tid, cluster in db.execute("SELECT term, cluster FROM term_chunks"):
                term_chunk_terms[cluster].add(terms[tid])
            cluster_rows = db.execute(
                "SELECT id, parent, ord, kind, label, size FROM clusters ORDER BY id"
            ).fetchall()
            children_of: Dict[Optional[int], List[Tuple[int, int]]] = defaultdict(list)
            built_clusters: Dict[int, Union[SimpleCluster, JointCluster]] = {}
            # Pre-order ids guarantee every child id exceeds its parent's,
            # so a reverse walk always finds children already built.
            for cid, parent, ord_, kind, label, size in reversed(cluster_rows):
                if kind == "joint":
                    children = [
                        built_clusters[child_id]
                        for _, child_id in sorted(children_of.get(cid, []))
                    ]
                    built_clusters[cid] = JointCluster(
                        children, chunks_by_cluster.get(cid, []), label=label
                    )
                else:
                    built_clusters[cid] = SimpleCluster._from_normalized(
                        int(size),
                        chunks_by_cluster.get(cid, []),
                        TermChunk(frozenset(term_chunk_terms.get(cid, ()))),
                        label,
                        None,
                    )
                children_of[parent].append((ord_, cid))
            tops = [
                built_clusters[cid] for _, cid in sorted(children_of.get(None, []))
            ]
            return DisassociatedDataset(tops, k=self.k, m=self.m)

    def verify_against(self, published: DisassociatedDataset) -> bool:
        """Whether the stored fingerprint matches ``published``'s content."""
        self._require_built()
        return self.fingerprint == publication_fingerprint(published.to_dict())


__all__ = ["PublicationStore", "LOCK_TIMEOUT"]

"""Persistent, indexed publication store (the queryable-output subsystem).

The sixth subsystem of the reproduction: once a disassociated
publication exists -- from a batch run, a sharded streaming run or an
incremental delta -- this package persists it into a single-file SQLite
database with term->chunk and chunk->cluster inverted indexes and
per-term support aggregates, so the analyst queries from
:mod:`repro.analysis` answer from index lookups instead of re-scanning
the whole publication per query.

* :class:`PublicationStore` -- the store itself (WAL, versioned schema,
  fingerprint-validated, atomic generation-stamped rebuilds).
* :class:`QueryEngine` -- one query surface over either a live
  publication (the bit-for-bit equivalence oracle) or a store.
* :class:`StoreSupportEstimator` -- the store-backed twin of
  :class:`repro.analysis.SupportEstimator`.
* :func:`publication_fingerprint` / :func:`pubstore_path` -- identity
  and layout helpers shared with the incremental pipeline.
"""

from repro.pubstore.engine import QUERY_OPS, QueryEngine
from repro.pubstore.estimation import StoreSupportEstimator
from repro.pubstore.schema import (
    PUBSTORE_NAME,
    PUBSTORE_VERSION,
    publication_fingerprint,
    pubstore_path,
)
from repro.pubstore.store import PublicationStore

__all__ = [
    "PUBSTORE_NAME",
    "PUBSTORE_VERSION",
    "PublicationStore",
    "QUERY_OPS",
    "QueryEngine",
    "StoreSupportEstimator",
    "publication_fingerprint",
    "pubstore_path",
]

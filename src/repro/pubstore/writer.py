"""Decompose a publication into the store's relational rows.

The writer walks a :class:`~repro.core.clusters.DisassociatedDataset`
once and produces every table's rows, including the two orderings the
query engine depends on:

* ``ord`` -- the chunk's position inside its owning cluster, used by
  :meth:`PublicationStore.load_publication` to rebuild the exact tree;
* ``eord`` -- the position in the enumeration order
  :meth:`~repro.analysis.SupportEstimator.expected_support` visits the
  top-level cluster's chunks in (all shared chunks in pre-order, then
  every leaf's record chunks).  Persisting it lets the store-backed
  estimator multiply its per-chunk probabilities in exactly the same
  order as the in-memory oracle, keeping the floats bit-for-bit equal.

The aggregates (``term_stats``, ``pair_stats``) are accumulated during
the same walk, so building the store is a single pass over the
publication regardless of how many queries it later serves.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from itertools import combinations
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.clusters import DisassociatedDataset, JointCluster, RecordChunk

if TYPE_CHECKING:  # pragma: no cover - typing only
    import sqlite3


class _RowBuilder:
    """Accumulates every table's rows during one publication walk."""

    def __init__(self) -> None:
        self.term_ids: Dict[str, int] = {}
        self.cluster_rows: List[tuple] = []
        self.chunk_rows: List[list] = []
        self.chunk_term_rows: List[tuple] = []
        self.subrecord_rows: List[tuple] = []
        self.posting_rows: List[tuple] = []
        self.term_chunk_rows: List[tuple] = []
        self.contribution_rows: List[tuple] = []
        self.chunk_support: Counter = Counter()
        self.term_chunk_count: Counter = Counter()
        self.pair_counts: Counter = Counter()
        self.cluster_term_pairs: set = set()
        # eord assignment: per top-level cluster, shared chunks (walk
        # order == iter_shared_chunks pre-order) then record chunks
        # (walk order == leaves() DFS order).
        self.shared_by_top: Dict[int, List[int]] = defaultdict(list)
        self.record_by_top: Dict[int, List[int]] = defaultdict(list)
        self.total_subrecords = 0
        self.total_term_chunk_terms = 0
        self._next_cluster = 1
        self._next_chunk = 1
        self._next_subrecord = 1

    def term_id(self, term: str) -> int:
        """Intern ``term`` and return its id."""
        tid = self.term_ids.get(term)
        if tid is None:
            tid = len(self.term_ids) + 1
            self.term_ids[term] = tid
        return tid

    def add_chunk(
        self, chunk: RecordChunk, owner: int, top: int, ord_: int, kind: str
    ) -> int:
        """Emit one record/shared chunk's rows; returns the chunk id."""
        chunk_id = self._next_chunk
        self._next_chunk += 1
        # eord is assigned after the walk; keep a mutable placeholder.
        self.chunk_rows.append([chunk_id, owner, top, ord_, 0, kind])
        for term in chunk.domain:
            tid = self.term_id(term)
            self.chunk_term_rows.append((tid, chunk_id, top))
            self.cluster_term_pairs.add((tid, top))
        for position, subrecord in enumerate(chunk.subrecords):
            subrecord_id = self._next_subrecord
            self._next_subrecord += 1
            self.total_subrecords += 1
            self.subrecord_rows.append((subrecord_id, chunk_id, position))
            terms = sorted(subrecord)
            for term in terms:
                tid = self.term_id(term)
                self.posting_rows.append((tid, subrecord_id, chunk_id))
                self.chunk_support[tid] += 1
            for first, second in combinations(terms, 2):
                self.pair_counts[(first, second)] += 1
        contributions = getattr(chunk, "contributions", None)
        if contributions:
            for position, (label, count) in enumerate(contributions.items()):
                self.contribution_rows.append(
                    (chunk_id, position, str(label), int(count))
                )
        return chunk_id

    def walk(self, cluster, parent: Optional[int], top: Optional[int], ord_: int) -> int:
        """Emit ``cluster``'s subtree in pre-order; returns its cluster id."""
        cluster_id = self._next_cluster
        self._next_cluster += 1
        my_top = top if top is not None else cluster_id
        if isinstance(cluster, JointCluster):
            self.cluster_rows.append(
                (cluster_id, parent, my_top, ord_, "joint", cluster.label, cluster.size)
            )
            for position, chunk in enumerate(cluster.shared_chunks):
                chunk_id = self.add_chunk(chunk, cluster_id, my_top, position, "shared")
                self.shared_by_top[my_top].append(chunk_id)
            for position, child in enumerate(cluster.children):
                self.walk(child, cluster_id, my_top, position)
        else:
            self.cluster_rows.append(
                (cluster_id, parent, my_top, ord_, "simple", cluster.label, cluster.size)
            )
            for position, chunk in enumerate(cluster.record_chunks):
                chunk_id = self.add_chunk(chunk, cluster_id, my_top, position, "record")
                self.record_by_top[my_top].append(chunk_id)
            for term in cluster.term_chunk.terms:
                tid = self.term_id(term)
                self.term_chunk_rows.append((tid, cluster_id, my_top))
                self.term_chunk_count[tid] += 1
                self.cluster_term_pairs.add((tid, my_top))
                self.total_term_chunk_terms += 1
        return cluster_id

    def assign_eord(self) -> None:
        """Stamp each chunk's estimation ordinal (shared first, then record)."""
        eord_of: Dict[int, int] = {}
        tops = set(self.shared_by_top) | set(self.record_by_top)
        for top in tops:
            ordered = self.shared_by_top.get(top, []) + self.record_by_top.get(top, [])
            for position, chunk_id in enumerate(ordered):
                eord_of[chunk_id] = position
        for row in self.chunk_rows:
            row[4] = eord_of[row[0]]


def build_rows(published: DisassociatedDataset) -> _RowBuilder:
    """Walk ``published`` and return every table's rows."""
    builder = _RowBuilder()
    for position, cluster in enumerate(published.clusters):
        builder.walk(cluster, None, None, position)
    builder.assign_eord()
    return builder


def insert_rows(
    db: "sqlite3.Connection", builder: _RowBuilder, published: DisassociatedDataset
) -> Dict[str, str]:
    """Bulk-insert the builder's rows; returns the data-derived meta entries.

    Must be called inside an open transaction: the caller (the store)
    owns BEGIN/COMMIT so a crash mid-build rolls back to the previous
    consistent snapshot instead of leaving half an index behind.
    """
    db.executemany(
        "INSERT INTO terms (id, term) VALUES (?, ?)",
        ((tid, term) for term, tid in builder.term_ids.items()),
    )
    db.executemany(
        "INSERT INTO clusters (id, parent, top, ord, kind, label, size)"
        " VALUES (?, ?, ?, ?, ?, ?, ?)",
        builder.cluster_rows,
    )
    db.executemany(
        "INSERT INTO chunks (id, cluster, top, ord, eord, kind)"
        " VALUES (?, ?, ?, ?, ?, ?)",
        builder.chunk_rows,
    )
    db.executemany(
        "INSERT INTO chunk_terms (term, chunk, top) VALUES (?, ?, ?)",
        builder.chunk_term_rows,
    )
    db.executemany(
        "INSERT INTO subrecords (id, chunk, ord) VALUES (?, ?, ?)",
        builder.subrecord_rows,
    )
    db.executemany(
        "INSERT INTO postings (term, subrecord, chunk) VALUES (?, ?, ?)",
        builder.posting_rows,
    )
    db.executemany(
        "INSERT INTO term_chunks (term, cluster, top) VALUES (?, ?, ?)",
        builder.term_chunk_rows,
    )
    db.executemany(
        "INSERT INTO cluster_terms (term, top) VALUES (?, ?)",
        sorted(builder.cluster_term_pairs),
    )
    db.executemany(
        "INSERT INTO term_stats (term, chunk_support, term_chunk_count, total)"
        " VALUES (?, ?, ?, ?)",
        (
            (
                tid,
                builder.chunk_support.get(tid, 0),
                builder.term_chunk_count.get(tid, 0),
                builder.chunk_support.get(tid, 0) + builder.term_chunk_count.get(tid, 0),
            )
            for tid in builder.term_ids.values()
        ),
    )
    db.executemany(
        "INSERT INTO pair_stats (a, b, support) VALUES (?, ?, ?)",
        (
            (builder.term_ids[a], builder.term_ids[b], support)
            for (a, b), support in builder.pair_counts.items()
        ),
    )
    db.executemany(
        "INSERT INTO contributions (chunk, ord, label, count) VALUES (?, ?, ?, ?)",
        builder.contribution_rows,
    )
    return {
        "k": str(published.k),
        "m": str(published.m),
        "total_records": str(published.total_records()),
        "total_subrecords": str(builder.total_subrecords),
        "chunk_rows": str(builder.total_subrecords + builder.total_term_chunk_terms),
    }


__all__ = ["build_rows", "insert_rows"]

"""Store-backed support estimation with oracle-identical arithmetic.

:class:`StoreSupportEstimator` mirrors the public surface of
:class:`repro.analysis.SupportEstimator` -- ``lower_bound``,
``expected_support``, ``reconstructed_support`` -- but answers from a
:class:`~repro.pubstore.PublicationStore`'s indexes instead of walking
the publication object graph.

Bit-for-bit parity is a design constraint, not an aspiration, so the
float arithmetic replays the oracle exactly:

* candidate clusters are visited in publication order (pre-order ids);
  clusters whose domain does not cover the itemset contribute an exact
  ``0.0`` in the oracle, so skipping them leaves the running sum
  unchanged (``x + 0.0 == x`` for every finite ``x``);
* inside a cluster, the per-chunk ``matching / size`` factors multiply
  in the persisted enumeration order (``eord``), the same order the
  oracle's chunk loop visits;
* uncovered term-chunk terms each contribute the same ``1.0 / size``
  factor, so their iteration order cannot change the product.

``reconstructed_support`` is inherently a whole-publication operation
(it samples full reconstructions), so it delegates to the in-memory
estimator over :meth:`~repro.pubstore.PublicationStore.load_publication`
-- the faithful reload makes a seeded store-backed estimate identical
to the in-memory one.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.estimation import SupportEstimator
from repro.pubstore.store import PublicationStore


class StoreSupportEstimator:
    """Itemset-support estimates answered from a publication store."""

    def __init__(self, store: PublicationStore, seed: Optional[int] = None):
        self._store = store
        self._seed = seed
        self._inner: Optional[SupportEstimator] = None

    def _in_memory(self) -> SupportEstimator:
        """The in-memory estimator over the faithful reload (built once)."""
        if self._inner is None:
            self._inner = SupportEstimator(
                self._store.load_publication(), seed=self._seed
            )
        return self._inner

    def lower_bound(self, itemset: Iterable) -> int:
        """Provable lower bound on the itemset's original support."""
        return self._store.lower_bound_support(itemset)

    def expected_support(self, itemset: Iterable) -> float:
        """Expected original support under per-cluster independence."""
        store = self._store
        items = frozenset(str(term) for term in itemset)
        if not items:
            return float(store.total_records)
        ids = store.term_ids(items)
        if len(ids) < len(items):
            # A term outside the published domain: no cluster's domain
            # covers the itemset, so every oracle summand is 0.0.
            return 0.0
        wanted = sorted(ids.values())
        total = 0.0
        for top in store.candidate_tops(wanted, len(wanted)):
            total += self._expected_in_top(top, wanted)
        return total

    def _expected_in_top(self, top: int, term_ids: list) -> float:
        """One top-level cluster's expected contribution (oracle arithmetic)."""
        store = self._store
        size = store.top_size(top)
        if size == 0:
            return 0.0
        probability = 1.0
        covered: set = set()
        for chunk, part in store.chunk_parts(top, term_ids):
            covered.update(part)
            matching = store.matching_count(chunk, part)
            probability *= matching / size
            if probability == 0.0:
                return 0.0
        uncovered = set(term_ids) - covered
        if uncovered:
            present = store.term_chunk_present(top, uncovered)
            if present != uncovered:
                # candidate_tops guaranteed full-domain coverage, so a
                # term missing from both record chunks and term chunks
                # cannot happen for a consistent store; mirror the
                # oracle's "not published here" result regardless.
                return 0.0
            for _ in uncovered:
                probability *= 1.0 / size
        return probability * size

    def reconstructed_support(
        self, itemset: Iterable, reconstructions: int = 5
    ) -> float:
        """Average support over sampled reconstructions (seed-deterministic)."""
        return self._in_memory().reconstructed_support(
            itemset, reconstructions=reconstructions
        )


__all__ = ["StoreSupportEstimator"]

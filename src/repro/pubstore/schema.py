"""SQLite schema for the indexed publication store.

One publication per store file.  The schema decomposes a
:class:`~repro.core.clusters.DisassociatedDataset` into relational form
*plus* the inverted indexes and aggregates that let the analyst queries
in :mod:`repro.analysis` answer without scanning the publication:

``meta``
    Key/value header: schema version, publication fingerprint,
    generation stamp, ``k``/``m``, and the record totals the query
    engine needs as constants (``total_records``, ``chunk_rows``,
    ``total_subrecords``).
``terms``
    Interned term strings; every other table refers to terms by id.
``clusters``
    The cluster tree (simple and joint), pre-order ids, with each row
    carrying its top-level ancestor (``top``) so per-cluster work never
    walks the tree at query time.
``chunks``
    Record and shared chunks with two orderings: ``ord`` (position in
    the owning cluster, used to reload the publication faithfully) and
    ``eord`` (the enumeration order
    :meth:`~repro.analysis.SupportEstimator.expected_support` visits
    chunks in, used to reproduce its float products bit-for-bit).
    ``cluster``/``top`` are the chunk->cluster inverted index.
``chunk_terms``
    Chunk domains; the ``(term, chunk)`` primary key is the term->chunk
    inverted index.
``subrecords`` / ``postings``
    Subrecord identities and the term->subrecord inverted index that
    answers itemset-support queries with an index intersection.
``term_chunks``
    Term-chunk membership per simple cluster (``T``-chunk terms).
``cluster_terms``
    Full-domain term -> top-level cluster map, used to prune
    ``expected_support`` to the clusters whose domain covers the
    itemset.
``term_stats`` / ``pair_stats``
    Per-term and per-pair support aggregates: ``top_terms`` and
    ``frequent_pairs`` answer from these alone.
``contributions``
    Ordered shared-chunk contribution lists (the reconstruction
    slicing order is load-bearing, so the order is persisted).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

#: File name of the publication store inside its directory.
PUBSTORE_NAME = "publication.sqlite"

#: Sibling file used as the advisory writer lock.
PUBSTORE_LOCK_NAME = "publication.lock"

#: Bumped whenever the schema below changes shape; a store written by a
#: different version is refused rather than silently misread.
PUBSTORE_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS terms (
    id   INTEGER PRIMARY KEY,
    term TEXT NOT NULL UNIQUE
);

CREATE TABLE IF NOT EXISTS clusters (
    id     INTEGER PRIMARY KEY,
    parent INTEGER,
    top    INTEGER NOT NULL,
    ord    INTEGER NOT NULL,
    kind   TEXT NOT NULL,
    label  TEXT NOT NULL,
    size   INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_clusters_parent ON clusters (parent, ord);

CREATE TABLE IF NOT EXISTS chunks (
    id      INTEGER PRIMARY KEY,
    cluster INTEGER NOT NULL,
    top     INTEGER NOT NULL,
    ord     INTEGER NOT NULL,
    eord    INTEGER NOT NULL,
    kind    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_chunks_cluster ON chunks (cluster, ord);
CREATE INDEX IF NOT EXISTS idx_chunks_top ON chunks (top, eord);

CREATE TABLE IF NOT EXISTS chunk_terms (
    term  INTEGER NOT NULL,
    chunk INTEGER NOT NULL,
    top   INTEGER NOT NULL,
    PRIMARY KEY (term, chunk)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_chunk_terms_chunk ON chunk_terms (chunk);
CREATE INDEX IF NOT EXISTS idx_chunk_terms_top ON chunk_terms (top, term);

CREATE TABLE IF NOT EXISTS subrecords (
    id    INTEGER PRIMARY KEY,
    chunk INTEGER NOT NULL,
    ord   INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_subrecords_chunk ON subrecords (chunk, ord);

CREATE TABLE IF NOT EXISTS postings (
    term      INTEGER NOT NULL,
    subrecord INTEGER NOT NULL,
    chunk     INTEGER NOT NULL,
    PRIMARY KEY (term, subrecord)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_postings_chunk ON postings (chunk, term, subrecord);

CREATE TABLE IF NOT EXISTS term_chunks (
    term    INTEGER NOT NULL,
    cluster INTEGER NOT NULL,
    top     INTEGER NOT NULL,
    PRIMARY KEY (term, cluster)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_term_chunks_cluster ON term_chunks (cluster);
CREATE INDEX IF NOT EXISTS idx_term_chunks_top ON term_chunks (top, term);

CREATE TABLE IF NOT EXISTS cluster_terms (
    term INTEGER NOT NULL,
    top  INTEGER NOT NULL,
    PRIMARY KEY (term, top)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS term_stats (
    term             INTEGER PRIMARY KEY,
    chunk_support    INTEGER NOT NULL,
    term_chunk_count INTEGER NOT NULL,
    total            INTEGER NOT NULL
);

CREATE TABLE IF NOT EXISTS pair_stats (
    a       INTEGER NOT NULL,
    b       INTEGER NOT NULL,
    support INTEGER NOT NULL,
    PRIMARY KEY (a, b)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_pair_stats_support ON pair_stats (support);

CREATE TABLE IF NOT EXISTS contributions (
    chunk INTEGER NOT NULL,
    ord   INTEGER NOT NULL,
    label TEXT NOT NULL,
    count INTEGER NOT NULL,
    PRIMARY KEY (chunk, ord)
) WITHOUT ROWID;
"""

#: Every data table the writer clears before a rebuild (``meta`` is
#: restamped, not cleared, so version/fingerprint survive a rebuild of
#: the same publication).
DATA_TABLES = (
    "terms",
    "clusters",
    "chunks",
    "chunk_terms",
    "subrecords",
    "postings",
    "term_chunks",
    "cluster_terms",
    "term_stats",
    "pair_stats",
    "contributions",
)


def pubstore_path(store_dir: Union[str, Path]) -> Path:
    """Return the SQLite file path for a publication store directory."""
    return Path(store_dir) / PUBSTORE_NAME


def publication_fingerprint(payload: Dict[str, Any]) -> str:
    """Fingerprint a publication's serialized form (``to_dict`` payload).

    The digest is taken over the canonical JSON encoding (sorted keys,
    compact separators) so logically identical publications fingerprint
    identically regardless of how the payload dict was assembled.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()

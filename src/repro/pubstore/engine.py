"""One query surface over a live publication or a publication store.

:class:`QueryEngine` is what every caller above the storage layer talks
to: the analyst helpers in :mod:`repro.analysis.queries`, the
relative-error metrics, the service's ``/query`` endpoints and the
``repro query`` CLI all accept an engine and never care whether it is
backed by an in-memory :class:`~repro.core.clusters.DisassociatedDataset`
(the equivalence oracle: every answer defined by the existing
``analysis``/``metrics`` code paths) or by a
:class:`~repro.pubstore.PublicationStore` (the indexed path).  The two
backends are bit-for-bit interchangeable -- same ints, same floats, same
orderings -- which the parity suite asserts on every workload.

:meth:`QueryEngine.execute` adds the validated, JSON-safe op dispatch
the HTTP and CLI front ends share: unknown ops, unknown parameters and
malformed values raise :class:`~repro.exceptions.ParameterError` (the
service maps it to a 400 with the established error-kind contract).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro import faults
from repro.analysis import queries
from repro.analysis.estimation import SupportEstimator
from repro.core import deadline
from repro.core.clusters import DisassociatedDataset
from repro.core.dataset import TransactionDataset
from repro.exceptions import ParameterError
from repro.pubstore.estimation import StoreSupportEstimator
from repro.pubstore.store import PublicationStore

#: Sentinel distinguishing "seed not supplied" from "seed=None".
_UNSET = object()


class QueryEngine:
    """Publication analytics over either backend, one answer contract.

    Args:
        source: a live :class:`DisassociatedDataset` (answers come from
            the in-memory ``analysis`` oracle over its chunk dataset) or
            an open :class:`PublicationStore` (answers come from the
            store's inverted indexes and aggregates).
        seed: default seed for reconstruction-based estimates.
    """

    def __init__(
        self,
        source: Union[DisassociatedDataset, PublicationStore],
        *,
        seed: Optional[int] = None,
    ):
        self._seed = seed
        self._chunk_dataset: Optional[TransactionDataset] = None
        self._loaded: Optional[DisassociatedDataset] = None
        if isinstance(source, PublicationStore):
            source.validate()
            self._store: Optional[PublicationStore] = source
            self._published: Optional[DisassociatedDataset] = None
        elif isinstance(source, DisassociatedDataset):
            self._store = None
            self._published = source
        else:
            raise ParameterError(
                "QueryEngine needs a DisassociatedDataset or a PublicationStore, "
                f"got {type(source).__name__}"
            )

    # -- backend plumbing ------------------------------------------------ #
    @property
    def backend(self) -> str:
        """``"store"`` or ``"memory"``, for reporting."""
        return "store" if self._store is not None else "memory"

    def _check(self) -> None:
        """Fault/deadline gate shared by every query op."""
        faults.check("pubstore.query")
        deadline.check("pubstore.query")

    def _dataset(self) -> TransactionDataset:
        """The in-memory oracle's chunk dataset (built once per engine)."""
        if self._chunk_dataset is None:
            assert self._published is not None
            self._chunk_dataset = self._published.chunk_dataset()
        return self._chunk_dataset

    def publication_dataset(self) -> DisassociatedDataset:
        """The publication behind this engine (store reloads are cached)."""
        if self._published is not None:
            return self._published
        if self._loaded is None:
            assert self._store is not None
            self._loaded = self._store.load_publication()
        return self._loaded

    def describe(self) -> dict:
        """Identity and totals of the publication behind this engine."""
        self._check()
        if self._store is not None:
            payload = self._store.describe()
            payload["backend"] = "store"
            return payload
        published = self._published
        assert published is not None
        return {
            "backend": "memory",
            "k": published.k,
            "m": published.m,
            "total_records": published.total_records(),
            "chunk_rows": len(self._dataset()),
        }

    # -- query ops ------------------------------------------------------- #
    def top_terms(self, count: int = 10) -> List[Tuple[str, int]]:
        """The ``count`` most supported published terms."""
        self._check()
        if self._store is not None:
            return self._store.top_terms(count)
        return queries.top_terms(self._dataset(), count)

    def cooccurrence_count(self, terms: Iterable) -> int:
        """Number of chunk-dataset rows containing all ``terms``."""
        self._check()
        if self._store is not None:
            return self._store.support(terms)
        return queries.cooccurrence_count(self._dataset(), terms)

    def containment_ratio(self, terms: Iterable) -> float:
        """Fraction of chunk-dataset rows containing all ``terms``."""
        self._check()
        if self._store is not None:
            total = self._store.chunk_rows
            if total == 0:
                return 0.0
            return self._store.support(terms) / total
        return queries.containment_ratio(self._dataset(), terms)

    def rule_confidence(
        self, antecedent: Iterable, consequent: Iterable
    ) -> Optional[float]:
        """Confidence of ``antecedent -> consequent`` (None if undefined)."""
        self._check()
        if self._store is not None:
            antecedent = frozenset(str(t) for t in antecedent)
            consequent = frozenset(str(t) for t in consequent)
            base = self._store.support(antecedent)
            if base == 0:
                return None
            return self._store.support(antecedent | consequent) / base
        return queries.rule_confidence(self._dataset(), antecedent, consequent)

    def frequent_pairs(self, min_support: int) -> List[Tuple[Tuple, int]]:
        """All term pairs with support >= ``min_support``, most frequent first."""
        self._check()
        if self._store is not None:
            pairs = self._store.pairs_with_min_support(min_support)
            pairs.sort(key=lambda pair: (-pair[1], pair[0]))
            return pairs
        return queries.frequent_pairs(self._dataset(), min_support)

    def lower_bound(self, terms: Iterable) -> int:
        """Guaranteed lower bound on the itemset's original support."""
        self._check()
        if self._store is not None:
            return self._store.lower_bound_support(terms)
        assert self._published is not None
        return SupportEstimator(self._published, seed=self._seed).lower_bound(terms)

    def lower_bound_support(self, terms: Iterable) -> int:
        """Alias matching the :class:`DisassociatedDataset` method name.

        Lets the relative-error metrics accept an engine anywhere they
        accept a publication.
        """
        return self.lower_bound(terms)

    def expected_support(self, terms: Iterable) -> float:
        """Expected support under the independent-chunk probabilistic model."""
        self._check()
        if self._store is not None:
            return StoreSupportEstimator(self._store, seed=self._seed).expected_support(
                terms
            )
        assert self._published is not None
        return SupportEstimator(self._published, seed=self._seed).expected_support(terms)

    def reconstructed_support(
        self,
        terms: Iterable,
        reconstructions: int = 5,
        seed: Any = _UNSET,
    ) -> float:
        """Average support over sampled reconstructions (seed-deterministic)."""
        self._check()
        use_seed = self._seed if seed is _UNSET else seed
        estimator = SupportEstimator(self.publication_dataset(), seed=use_seed)
        return estimator.reconstructed_support(terms, reconstructions=reconstructions)

    # -- validated dispatch (HTTP + CLI) --------------------------------- #
    def execute(self, op: str, params: Optional[Mapping[str, Any]] = None) -> dict:
        """Run one named query with validated parameters.

        Returns a JSON-safe envelope ``{"op", "backend", "result"}``.
        Unknown ops, unknown parameter names and malformed values raise
        :class:`~repro.exceptions.ParameterError`.
        """
        spec = _OPS.get(str(op))
        if spec is None:
            raise ParameterError(
                f"unknown query op {op!r}; available: {', '.join(sorted(_OPS))}"
            )
        supplied = dict(params or {})
        unknown = set(supplied) - set(spec.params)
        if unknown:
            raise ParameterError(
                f"unknown parameter(s) for {op!r}: {', '.join(sorted(unknown))}; "
                f"accepted: {', '.join(sorted(spec.params)) or '(none)'}"
            )
        kwargs: Dict[str, Any] = {}
        for name, (convert, required, default) in spec.params.items():
            if name in supplied:
                kwargs[name] = convert(name, supplied[name])
            elif required:
                raise ParameterError(f"query op {op!r} requires parameter {name!r}")
            elif default is not _UNSET:
                kwargs[name] = default
        result = spec.run(self, kwargs)
        return {"op": str(op), "backend": self.backend, "result": result}


def _as_terms(name: str, value: Any) -> List[str]:
    """Coerce a parameter to a list of term strings."""
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise ParameterError(
            f"parameter {name!r} must be a list of terms, got {value!r}"
        )
    return [str(term) for term in value]


def _as_int(name: str, value: Any) -> int:
    """Coerce a parameter to an int."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ParameterError(f"parameter {name!r} must be an integer, got {value!r}")
    try:
        return int(value)
    except ValueError as exc:
        raise ParameterError(
            f"parameter {name!r} must be an integer, got {value!r}"
        ) from exc


def _as_optional_int(name: str, value: Any) -> Optional[int]:
    """Coerce a parameter to an int or ``None``."""
    if value is None:
        return None
    return _as_int(name, value)


class _OpSpec:
    """One execute() op: parameter table plus the bound runner."""

    def __init__(self, params: Dict[str, tuple], run: Callable):
        self.params = params
        self.run = run


def _pairs_payload(pairs: List[Tuple[Tuple, int]]) -> List[list]:
    """JSON-safe form of a frequent-pairs answer."""
    return [[list(pair), support] for pair, support in pairs]


def _top_terms_payload(terms: List[Tuple[str, int]]) -> List[list]:
    """JSON-safe form of a top-terms answer."""
    return [[term, support] for term, support in terms]


_OPS: Dict[str, _OpSpec] = {
    "describe": _OpSpec({}, lambda engine, kw: engine.describe()),
    "top_terms": _OpSpec(
        {"count": (_as_int, False, 10)},
        lambda engine, kw: _top_terms_payload(engine.top_terms(**kw)),
    ),
    "cooccurrence_count": _OpSpec(
        {"terms": (_as_terms, True, _UNSET)},
        lambda engine, kw: engine.cooccurrence_count(**kw),
    ),
    "containment_ratio": _OpSpec(
        {"terms": (_as_terms, True, _UNSET)},
        lambda engine, kw: engine.containment_ratio(**kw),
    ),
    "rule_confidence": _OpSpec(
        {
            "antecedent": (_as_terms, True, _UNSET),
            "consequent": (_as_terms, True, _UNSET),
        },
        lambda engine, kw: engine.rule_confidence(**kw),
    ),
    "frequent_pairs": _OpSpec(
        {"min_support": (_as_int, True, _UNSET)},
        lambda engine, kw: _pairs_payload(engine.frequent_pairs(**kw)),
    ),
    "lower_bound": _OpSpec(
        {"terms": (_as_terms, True, _UNSET)},
        lambda engine, kw: engine.lower_bound(**kw),
    ),
    "expected_support": _OpSpec(
        {"terms": (_as_terms, True, _UNSET)},
        lambda engine, kw: engine.expected_support(**kw),
    ),
    "reconstructed_support": _OpSpec(
        {
            "terms": (_as_terms, True, _UNSET),
            "reconstructions": (_as_int, False, 5),
            "seed": (_as_optional_int, False, _UNSET),
        },
        lambda engine, kw: engine.reconstructed_support(**kw),
    ),
}

#: The ops ``execute`` (and therefore HTTP ``/query`` and ``repro query``)
#: accept, in documentation order.
QUERY_OPS = tuple(sorted(_OPS))


__all__ = ["QueryEngine", "QUERY_OPS"]

"""FP-growth frequent-itemset mining.

A faster alternative to :mod:`repro.mining.apriori` used by the metric
computations on the larger (synthetic-scaling) experiments.  The
implementation builds the classic FP-tree with header links and mines it
recursively through conditional pattern bases.  Results are identical to
Apriori (both are exact); tests cross-check the two implementations.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.core.dataset import TransactionDataset
from repro.exceptions import MiningError


class _FPNode:
    """One node of the FP-tree: an item, a count and child links."""

    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Optional[str], parent: Optional["_FPNode"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[str, _FPNode] = {}
        self.link: Optional[_FPNode] = None


class _FPTree:
    """FP-tree with a header table of per-item node chains."""

    def __init__(self):
        self.root = _FPNode(None, None)
        self.header: dict[str, _FPNode] = {}

    def insert(self, items: list[str], count: int = 1) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                # prepend to the header chain
                child.link = self.header.get(item)
                self.header[item] = child
            child.count += count
            node = child

    def prefix_paths(self, item: str) -> list[tuple[list[str], int]]:
        """Conditional pattern base of ``item``: (path-to-root, count) pairs."""
        paths: list[tuple[list[str], int]] = []
        node = self.header.get(item)
        while node is not None:
            path: list[str] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                paths.append((list(reversed(path)), node.count))
            node = node.link
        return paths


def _build_tree(transactions: list[tuple[list[str], int]], min_support: int) -> tuple[_FPTree, Counter]:
    counts: Counter = Counter()
    for items, count in transactions:
        for item in items:
            counts[item] += count
    frequent = {item for item, c in counts.items() if c >= min_support}
    tree = _FPTree()
    for items, count in transactions:
        filtered = [i for i in items if i in frequent]
        # order by descending global count (ties lexicographic) for maximal sharing
        filtered.sort(key=lambda i: (-counts[i], i))
        if filtered:
            tree.insert(filtered, count)
    return tree, counts


def _mine_tree(
    tree: _FPTree,
    counts: Counter,
    suffix: tuple,
    min_support: int,
    max_size: Optional[int],
    result: dict,
) -> None:
    items = sorted(
        (item for item, chain_count in counts.items() if chain_count >= min_support),
        key=lambda i: (counts[i], i),
    )
    for item in items:
        new_itemset = tuple(sorted(suffix + (item,)))
        support = counts[item]
        result[new_itemset] = support
        if max_size is not None and len(new_itemset) >= max_size:
            continue
        conditional = tree.prefix_paths(item)
        if not conditional:
            continue
        sub_tree, sub_counts = _build_tree(conditional, min_support)
        sub_counts = Counter(
            {i: c for i, c in sub_counts.items() if c >= min_support}
        )
        if sub_counts:
            _mine_tree(sub_tree, sub_counts, new_itemset, min_support, max_size, result)


def mine_frequent_itemsets(
    dataset: TransactionDataset,
    min_support: int,
    max_size: Optional[int] = None,
) -> dict[tuple, int]:
    """All itemsets with support >= ``min_support``, mined with FP-growth.

    Args and return value mirror
    :func:`repro.mining.apriori.mine_frequent_itemsets`.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if max_size is not None and max_size < 1:
        raise MiningError(f"max_size must be >= 1, got {max_size}")
    transactions = [(sorted(record), 1) for record in dataset if record]
    tree, counts = _build_tree(transactions, min_support)
    frequent_counts = Counter({i: c for i, c in counts.items() if c >= min_support})
    result: dict[tuple, int] = {}
    _mine_tree(tree, frequent_counts, (), min_support, max_size, result)
    return result


def mine_top_k(
    dataset: TransactionDataset,
    top_k: int,
    max_size: int = 3,
) -> list[tuple[tuple, int]]:
    """The ``top_k`` most frequent itemsets via FP-growth (same contract as Apriori)."""
    if top_k < 1:
        raise MiningError(f"top_k must be >= 1, got {top_k}")
    if len(dataset) == 0:
        return []
    threshold = max(1, len(dataset) // 10)
    while True:
        frequent = mine_frequent_itemsets(dataset, threshold, max_size=max_size)
        if len(frequent) >= top_k or threshold == 1:
            break
        threshold = max(1, threshold // 2)
    ranked = sorted(frequent.items(), key=lambda pair: (-pair[1], len(pair[0]), pair[0]))
    return ranked[:top_k]

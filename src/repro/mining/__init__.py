"""Frequent-itemset mining substrate and generalization hierarchies.

* :mod:`repro.mining.itemsets` -- exhaustive small-itemset supports, top-K.
* :mod:`repro.mining.apriori` -- level-wise Apriori miner.
* :mod:`repro.mining.fpgrowth` -- FP-growth miner (same results, faster).
* :mod:`repro.mining.hierarchy` -- balanced generalization hierarchies,
  NCP cost, multi-level (ML) transaction expansion.
"""

from repro.mining.apriori import mine_frequent_itemsets as apriori_mine_frequent_itemsets
from repro.mining.apriori import mine_top_k as apriori_mine_top_k
from repro.mining.fpgrowth import mine_frequent_itemsets as fpgrowth_mine_frequent_itemsets
from repro.mining.fpgrowth import mine_top_k as fpgrowth_mine_top_k
from repro.mining.hierarchy import GeneralizationHierarchy, expand_with_ancestors
from repro.mining.itemsets import (
    canonical,
    itemset_supports,
    pair_supports,
    top_k_itemset_set,
    top_k_itemsets,
)

__all__ = [
    "GeneralizationHierarchy",
    "apriori_mine_frequent_itemsets",
    "apriori_mine_top_k",
    "canonical",
    "expand_with_ancestors",
    "fpgrowth_mine_frequent_itemsets",
    "fpgrowth_mine_top_k",
    "itemset_supports",
    "pair_supports",
    "top_k_itemset_set",
    "top_k_itemsets",
]

"""Itemset utilities shared by the mining algorithms and the metrics.

The information-loss metrics of the paper (Section 6) compare frequent
itemsets and pair supports between the original and the published data, and
the baselines (Apriori anonymization, suppression) repeatedly count the
support of small term combinations.  This module provides the common
primitives:

* :func:`itemset_supports` -- exact supports of all itemsets up to a size,
* :func:`pair_supports` -- supports of all 2-itemsets over a given domain,
* :func:`top_k_itemsets` -- the K most frequent itemsets (used by tKd).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from itertools import combinations

from repro.core.dataset import TransactionDataset
from repro.exceptions import MiningError


def canonical(itemset: Iterable) -> tuple:
    """Canonical (sorted tuple of strings) representation of an itemset."""
    return tuple(sorted(str(t) for t in itemset))


def itemset_supports(
    dataset: TransactionDataset,
    max_size: int,
    restrict_to: Iterable = None,
) -> Counter:
    """Exact supports of every itemset of size 1..``max_size`` present in ``dataset``.

    Args:
        dataset: the transaction dataset.
        max_size: maximum itemset cardinality to enumerate.
        restrict_to: optional term subset; records are projected onto it
            before enumeration (keeps the enumeration tractable when only a
            slice of the domain matters, e.g. the ``re`` metric ranges).

    Returns:
        Counter mapping canonical itemsets to their supports.
    """
    if max_size < 1:
        raise MiningError(f"max_size must be >= 1, got {max_size}")
    keep = None if restrict_to is None else frozenset(str(t) for t in restrict_to)
    counts: Counter = Counter()
    for record in dataset:
        terms = record if keep is None else (record & keep)
        if not terms:
            continue
        ordered = sorted(terms)
        top = min(max_size, len(ordered))
        for size in range(1, top + 1):
            counts.update(combinations(ordered, size))
    return counts


def pair_supports(dataset: TransactionDataset, terms: Sequence) -> Counter:
    """Supports of every pair of ``terms`` in ``dataset`` (including zero pairs).

    Unlike :func:`itemset_supports`, absent pairs are reported with support
    0 so the relative-error metric can penalize combinations invented or
    destroyed by an anonymization method.
    """
    term_list = [str(t) for t in terms]
    counts = itemset_supports(dataset, max_size=2, restrict_to=term_list)
    result: Counter = Counter()
    for pair in combinations(sorted(term_list), 2):
        result[pair] = counts.get(pair, 0)
    return result


def top_k_itemsets(
    dataset: TransactionDataset,
    top_k: int,
    max_size: int = 3,
    min_support: int = 1,
) -> list[tuple[tuple, int]]:
    """The ``top_k`` most frequent itemsets of size 1..``max_size``.

    Ties are broken deterministically (higher support first, then smaller
    itemsets, then lexicographic order) so results are reproducible across
    runs and platforms.

    Returns:
        List of ``(itemset, support)`` pairs, most frequent first.
    """
    if top_k < 1:
        raise MiningError(f"top_k must be >= 1, got {top_k}")
    counts = itemset_supports(dataset, max_size=max_size)
    eligible = [(itemset, s) for itemset, s in counts.items() if s >= min_support]
    eligible.sort(key=lambda pair: (-pair[1], len(pair[0]), pair[0]))
    return eligible[:top_k]


def top_k_itemset_set(
    dataset: TransactionDataset, top_k: int, max_size: int = 3
) -> set[tuple]:
    """Just the itemsets (no supports) of :func:`top_k_itemsets`, as a set."""
    return {itemset for itemset, _support in top_k_itemsets(dataset, top_k, max_size)}

"""Generalization hierarchies for set-valued domains.

The generalization baseline (Apriori anonymization, Terrovitis et al. 2008),
the DiffPart baseline (whose top-down partitioning follows a taxonomy tree)
and the tKd-ML2 metric all require a hierarchy over the term domain.  Real
query-log / market-basket domains rarely ship with a semantic taxonomy, so
— exactly like the original papers — we build *balanced fan-out hierarchies*
over the (sorted) domain and treat interior nodes as generalized terms.

The hierarchy is a rooted tree whose leaves are the original terms.  It
exposes parent/ancestor navigation, leaf enumeration under a node, level
queries and the NCP-style generalization cost used to pick minimal cuts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional

from repro.exceptions import HierarchyError

ROOT = "*"


class GeneralizationHierarchy:
    """A rooted generalization tree over a term domain.

    Args:
        parents: mapping ``node -> parent`` for every non-root node.  The
            root is the single node that never appears as a key, or the
            conventional ``"*"`` node.
    """

    def __init__(self, parents: dict):
        self._parent = {str(child): str(parent) for child, parent in parents.items()}
        children: dict[str, list[str]] = {}
        for child, parent in self._parent.items():
            children.setdefault(parent, []).append(child)
        self._children = {node: sorted(kids) for node, kids in children.items()}
        roots = set(self._children) - set(self._parent)
        if len(roots) != 1:
            raise HierarchyError(
                f"hierarchy must have exactly one root, found {sorted(roots)!r}"
            )
        self._root = next(iter(roots))
        self._leaves = frozenset(
            node for node in self._parent if node not in self._children
        )
        self._validate_acyclic()
        self._level_cache: dict[str, int] = {}
        self._leaf_count_cache: dict[str, int] = {}
        self._leaves_under_cache: dict[str, frozenset] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def balanced(cls, terms: Iterable, fanout: int = 4) -> "GeneralizationHierarchy":
        """Build a balanced hierarchy with the given fan-out over ``terms``.

        Terms become leaves (sorted for determinism); interior nodes are
        synthetic labels ``g<level>_<index>`` and the root is ``"*"``.
        """
        if fanout < 2:
            raise HierarchyError(f"fanout must be >= 2, got {fanout}")
        leaves = sorted({str(t) for t in terms})
        if not leaves:
            raise HierarchyError("cannot build a hierarchy over an empty domain")
        parents: dict[str, str] = {}
        current = list(leaves)
        level = 0
        while len(current) > 1:
            level += 1
            next_level: list[str] = []
            for index in range(0, len(current), fanout):
                group = current[index : index + fanout]
                if len(current) <= fanout:
                    label = ROOT
                else:
                    label = f"g{level}_{index // fanout}"
                for node in group:
                    parents[node] = label
                next_level.append(label)
            current = next_level
        if len(leaves) == 1:
            parents[leaves[0]] = ROOT
        return cls(parents)

    def _validate_acyclic(self) -> None:
        for node in self._parent:
            seen = {node}
            current = node
            while current in self._parent:
                current = self._parent[current]
                if current in seen:
                    raise HierarchyError(f"hierarchy contains a cycle through {node!r}")
                seen.add(current)

    # ------------------------------------------------------------------ #
    # navigation
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> str:
        return self._root

    @property
    def leaves(self) -> frozenset:
        """The original (most specific) terms."""
        return self._leaves

    def is_leaf(self, node) -> bool:
        return str(node) in self._leaves

    def parent(self, node) -> Optional[str]:
        """Parent of ``node`` (``None`` for the root)."""
        node = str(node)
        if node == self._root:
            return None
        try:
            return self._parent[node]
        except KeyError:
            raise HierarchyError(f"unknown hierarchy node: {node!r}") from None

    def children(self, node) -> list[str]:
        return list(self._children.get(str(node), []))

    def ancestors(self, node, include_self: bool = False) -> list[str]:
        """Ancestors from parent to root (optionally prefixed by the node itself)."""
        node = str(node)
        result = [node] if include_self else []
        current = self.parent(node)
        while current is not None:
            result.append(current)
            current = self.parent(current)
        return result

    def level(self, node) -> int:
        """Depth of the node: leaves have the maximum level, the root has 0."""
        node = str(node)
        if node not in self._level_cache:
            self._level_cache[node] = len(self.ancestors(node))
        return self._level_cache[node]

    def leaves_under(self, node) -> frozenset:
        """All original terms generalized by ``node`` (itself, for a leaf)."""
        node = str(node)
        if self.is_leaf(node):
            return frozenset({node})
        cached = self._leaves_under_cache.get(node)
        if cached is not None:
            return cached
        stack = [node]
        found: set = set()
        while stack:
            current = stack.pop()
            kids = self._children.get(current)
            if not kids:
                found.add(current)
            else:
                stack.extend(kids)
        result = frozenset(found)
        self._leaves_under_cache[node] = result
        return result

    def leaf_count(self, node) -> int:
        node = str(node)
        if node not in self._leaf_count_cache:
            self._leaf_count_cache[node] = len(self.leaves_under(node))
        return self._leaf_count_cache[node]

    def generalize(self, term, levels: int = 1) -> str:
        """Generalize ``term`` by climbing ``levels`` steps (clamped at the root)."""
        current = str(term)
        for _ in range(levels):
            parent = self.parent(current)
            if parent is None:
                break
            current = parent
        return current

    def is_ancestor(self, node, descendant) -> bool:
        """True when ``node`` is (a possibly improper) ancestor of ``descendant``."""
        node, descendant = str(node), str(descendant)
        if node == descendant:
            return True
        return node in self.ancestors(descendant)

    # ------------------------------------------------------------------ #
    # information loss
    # ------------------------------------------------------------------ #
    def ncp(self, node) -> float:
        """Normalized Certainty Penalty of publishing ``node`` instead of a leaf.

        0 for leaves, 1 for the root, ``leaf_count/|domain|`` in between --
        the standard generalization cost used by [27] to choose cuts.
        """
        node = str(node)
        if self.is_leaf(node):
            return 0.0
        total = len(self._leaves)
        if total <= 1:
            return 1.0
        return self.leaf_count(node) / total

    def generalize_record(self, record: Iterable, cut: dict) -> frozenset:
        """Apply a generalization *cut* (term -> generalized node) to a record."""
        return frozenset(str(cut.get(str(t), str(t))) for t in record)

    def all_nodes(self) -> list[str]:
        """Every node of the hierarchy (leaves, interior nodes and the root)."""
        return sorted(set(self._parent) | set(self._children) | {self._root})


def expand_with_ancestors(
    record: Iterable, hierarchy: GeneralizationHierarchy, include_root: bool = False
) -> frozenset:
    """Extend a record with the ancestors of its terms (multi-level mining).

    Used by the tKd-ML2 metric: mining the extended transactions finds
    generalized frequent itemsets at every level of the hierarchy (Han & Fu,
    VLDB 1995).  Unknown terms (e.g. already-generalized labels) are kept
    as-is together with whatever ancestors the hierarchy knows about them.
    """
    extended: set = set()
    for term in record:
        term = str(term)
        extended.add(term)
        try:
            ancestors: Sequence[str] = hierarchy.ancestors(term)
        except HierarchyError:
            ancestors = []
        for ancestor in ancestors:
            if ancestor == hierarchy.root and not include_root:
                continue
            extended.add(ancestor)
    return frozenset(extended)

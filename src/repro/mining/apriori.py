"""Apriori frequent-itemset mining (Agrawal & Srikant style).

Used as the reference miner for the tKd / tKd-ML2 metrics and as the
violation detector of the generalization and suppression baselines.  The
implementation is a straightforward level-wise Apriori with the classic
candidate-generation + pruning steps; it is exact and deterministic.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from itertools import combinations
from typing import Optional

from repro.core.dataset import TransactionDataset
from repro.exceptions import MiningError


def _frequent_singletons(dataset: TransactionDataset, min_support: int) -> dict:
    counts = dataset.term_supports()
    return {
        (term,): support for term, support in counts.items() if support >= min_support
    }


def _generate_candidates(frequent: Iterable[tuple], size: int) -> set[tuple]:
    """Join step: combine frequent (size-1)-itemsets sharing a prefix, then prune."""
    frequent_set = set(frequent)
    candidates: set[tuple] = set()
    ordered = sorted(frequent_set)
    for i, left in enumerate(ordered):
        for right in ordered[i + 1 :]:
            if left[: size - 2] != right[: size - 2]:
                break
            candidate = tuple(sorted(set(left) | set(right)))
            if len(candidate) != size:
                continue
            # prune: every (size-1)-subset must be frequent
            if all(
                tuple(sorted(subset)) in frequent_set
                for subset in combinations(candidate, size - 1)
            ):
                candidates.add(candidate)
    return candidates


def mine_frequent_itemsets(
    dataset: TransactionDataset,
    min_support: int,
    max_size: Optional[int] = None,
) -> dict[tuple, int]:
    """All itemsets with support >= ``min_support`` (absolute count).

    Args:
        dataset: the transaction dataset.
        min_support: absolute minimum support (number of records).
        max_size: optional cap on itemset cardinality.

    Returns:
        Dict mapping canonical itemsets (sorted tuples) to supports.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if max_size is not None and max_size < 1:
        raise MiningError(f"max_size must be >= 1, got {max_size}")

    result: dict[tuple, int] = {}
    current = _frequent_singletons(dataset, min_support)
    size = 1
    while current:
        result.update(current)
        size += 1
        if max_size is not None and size > max_size:
            break
        candidates = _generate_candidates(current.keys(), size)
        if not candidates:
            break
        counts: Counter = Counter()
        candidate_by_first: dict[str, list[tuple]] = {}
        for candidate in candidates:
            candidate_by_first.setdefault(candidate[0], []).append(candidate)
        for record in dataset:
            if len(record) < size:
                continue
            for candidate in candidates:
                if all(term in record for term in candidate):
                    counts[candidate] += 1
        current = {
            candidate: support
            for candidate, support in counts.items()
            if support >= min_support
        }
    return result


def mine_top_k(
    dataset: TransactionDataset,
    top_k: int,
    max_size: int = 3,
) -> list[tuple[tuple, int]]:
    """The ``top_k`` most frequent itemsets of size up to ``max_size``.

    Apriori needs an absolute support threshold, so the threshold is lowered
    geometrically until at least ``top_k`` itemsets are frequent (or the
    threshold reaches 1).  Deterministic tie-breaking matches
    :func:`repro.mining.itemsets.top_k_itemsets`.
    """
    if top_k < 1:
        raise MiningError(f"top_k must be >= 1, got {top_k}")
    if len(dataset) == 0:
        return []
    threshold = max(1, len(dataset) // 10)
    while True:
        frequent = mine_frequent_itemsets(dataset, threshold, max_size=max_size)
        if len(frequent) >= top_k or threshold == 1:
            break
        threshold = max(1, threshold // 2)
    ranked = sorted(frequent.items(), key=lambda pair: (-pair[1], len(pair[0]), pair[0]))
    return ranked[:top_k]

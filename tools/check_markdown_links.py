"""Markdown link checker for the repository's docs (CI docs job).

Scans the given Markdown files (and directories, recursively) for inline
links and images -- ``[text](target)`` / ``![alt](target)`` -- and fails
when a *repository-relative* target does not exist on disk:

* absolute URLs (``http(s)://``, ``mailto:`` and anything else with a
  scheme) are skipped -- this is a docs-tree consistency check, not a web
  crawler;
* pure fragments (``#section``) are skipped; a fragment on a relative
  target is stripped before the existence check;
* targets that resolve *outside* the repository root are skipped (the
  README's CI badge links through GitHub's ``../../actions/...`` web
  path, which has no on-disk counterpart).

Standalone on purpose -- stdlib only, no ``repro`` imports -- so it runs
before the package is installed.

Usage::

    python tools/check_markdown_links.py README.md docs CHANGES.md
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Inline Markdown links/images: [text](target) with an optional title.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

#: Fenced code blocks, removed before scanning (``[x](y)`` in examples).
FENCE_PATTERN = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)

SCHEME_PATTERN = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def iter_markdown_files(paths: list[str]) -> list[Path]:
    """Expand the given files/directories into a sorted list of .md files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(path.rglob("*.md"))
        elif path.suffix.lower() == ".md":
            found.add(path)
        else:
            raise SystemExit(f"not a Markdown file or directory: {raw}")
    return sorted(found)


def check_file(markdown: Path, root: Path) -> list[str]:
    """Return one failure line per broken relative link in ``markdown``."""
    text = FENCE_PATTERN.sub("", markdown.read_text(encoding="utf-8"))
    failures = []
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if SCHEME_PATTERN.match(target) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (markdown.parent / relative).resolve()
        try:
            resolved.relative_to(root)
        except ValueError:
            continue  # escapes the repo (e.g. GitHub web paths) -- not ours
        if not resolved.exists():
            failures.append(f"{markdown}: broken link -> {target}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="Markdown files and/or directories")
    parser.add_argument(
        "--root",
        default=".",
        help="repository root; links resolving outside it are skipped (default: cwd)",
    )
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    files = iter_markdown_files(args.paths)
    failures: list[str] = []
    checked = 0
    for markdown in files:
        checked += 1
        failures.extend(check_file(markdown, root))
    print(f"link check: {checked} file(s) scanned")
    if failures:
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(f"FAIL: {len(failures)} broken link(s)", file=sys.stderr)
        return 1
    print("OK: no broken relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Setuptools entry point.

Plain ``setup.py`` metadata (no ``pyproject.toml``) so that
``pip install -e .`` works in fully offline environments where the
``wheel`` package (required by PEP-660 editable builds) is unavailable and
pip falls back to the legacy ``setup.py develop`` code path.  CI installs
the package this way instead of exporting ``PYTHONPATH=src``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-disassociation",
    version="1.1.0",
    description=(
        "Privacy preservation by disassociation (PVLDB 2012): "
        "k^m-anonymization of sparse set-valued data"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            # Back-compat alias: the CLI shipped as repro-anon before the
            # console script existed.
            "repro-anon=repro.cli:main",
        ]
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Security",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)

"""Scenario: an analyst working directly with a disassociated publication.

The paper (Section 6) describes three ways an analyst can use the published
data: guaranteed lower bounds computed straight from the chunks, a
probabilistic expectation model, and averaging query results over multiple
reconstructed datasets.  This example runs all three on the same queries and
compares them against the (normally unavailable) ground truth.

Run with::

    python examples/utility_analysis.py
"""

from __future__ import annotations

from repro import AnonymizationParams, Disassociator
from repro.analysis.estimation import SupportEstimator
from repro.analysis.queries import rule_confidence
from repro.core.reconstruct import Reconstructor
from repro.datasets.quest import generate_quest


def main() -> None:
    # a synthetic market-basket dataset (Quest model, as in the paper's
    # synthetic experiments)
    original = generate_quest(
        num_transactions=2_000, domain_size=400, avg_transaction_size=8, seed=21
    )
    print(f"original dataset: {original.stats().as_row()}")

    published = Disassociator(AnonymizationParams(k=5, m=2, max_cluster_size=30)).anonymize(
        original
    )
    estimator = SupportEstimator(published, seed=5)
    reconstructor = Reconstructor(published, seed=5)

    # --- support estimation ----------------------------------------------
    probes = original.terms_by_support()[:6]
    print("\nsupport estimates for the six most frequent items:")
    print(f"  {'item':8s} {'truth':>6s} {'lower':>6s} {'expected':>9s} {'avg(5 worlds)':>14s}")
    for item in probes:
        truth = original.support({item})
        lower = estimator.lower_bound({item})
        expected = estimator.expected_support({item})
        averaged = estimator.reconstructed_support({item}, reconstructions=5)
        print(f"  {item:8s} {truth:6d} {lower:6d} {expected:9.1f} {averaged:14.1f}")

    # --- pair supports: certainty vs estimation ---------------------------
    a, b = probes[0], probes[1]
    pair = {a, b}
    print(f"\npair {sorted(pair)}:")
    print(f"  ground truth support        {original.support(pair)}")
    print(f"  guaranteed lower bound      {estimator.lower_bound(pair)}")
    print(f"  probabilistic expectation   {estimator.expected_support(pair):.1f}")
    print(f"  average over 5 worlds       {estimator.reconstructed_support(pair, 5):.1f}")

    # --- association rules on reconstructed worlds ------------------------
    print(f"\nconfidence of the rule {a} -> {b}:")
    print(f"  on the original data        {rule_confidence(original, {a}, {b}):.2f}")
    for index, world in enumerate(reconstructor.reconstruct_many(3)):
        print(f"  on reconstructed world {index}   {rule_confidence(world, {a}, {b}):.2f}")

    print(
        "\ntakeaway: lower bounds are certain but conservative; the probabilistic "
        "model and multi-world averaging trade certainty for accuracy — exactly the "
        "options Section 6 of the paper lays out."
    )


if __name__ == "__main__":
    main()

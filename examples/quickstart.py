"""Quickstart: disassociate a small web-search query log.

Runs the paper's running example (Figure 2): ten users' query histories are
anonymized with k=3, m=2, the published structure is printed, the anonymity
guarantee is independently audited, and one possible original dataset is
reconstructed for analysis.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnonymizationService,
    ServiceConfig,
    TransactionDataset,
    audit,
    reconstruct,
)

QUERY_LOG = [
    {"itunes", "flu", "madonna", "ikea", "ruby"},
    {"madonna", "flu", "viagra", "ruby", "audi a4", "sony tv"},
    {"itunes", "madonna", "audi a4", "ikea", "sony tv"},
    {"itunes", "flu", "viagra"},
    {"itunes", "flu", "madonna", "audi a4", "sony tv"},
    {"madonna", "digital camera", "panic disorder", "playboy"},
    {"iphone sdk", "madonna", "ikea", "ruby"},
    {"iphone sdk", "digital camera", "madonna", "playboy"},
    {"iphone sdk", "digital camera", "panic disorder"},
    {"iphone sdk", "digital camera", "madonna", "ikea", "ruby"},
]


def main() -> None:
    dataset = TransactionDataset(QUERY_LOG)
    print(f"original dataset: {dataset.stats().as_row()}")
    print(
        "identifying combination {madonna, viagra} matches "
        f"{dataset.support({'madonna', 'viagra'})} record(s) -> identity disclosure risk\n"
    )

    # --- anonymize -------------------------------------------------------
    # The service facade is the production entry point: it keeps the worker
    # pool, vocabulary and kernel backend warm across requests.  (The
    # one-shot ``anonymize(dataset, k=3, m=2)`` shim produces bit-for-bit
    # the same publication.)
    with AnonymizationService(ServiceConfig(k=3, m=2, max_cluster_size=6)) as service:
        published = service.run(dataset).publication
    print(f"published: {published}")
    for leaf in published.simple_clusters():
        print(f"\ncluster {leaf.label} (|P| = {leaf.size})")
        for index, chunk in enumerate(leaf.record_chunks, start=1):
            print(f"  record chunk C{index} over {sorted(chunk.domain)}:")
            for subrecord in chunk.subrecords:
                print(f"    {sorted(subrecord)}")
        print(f"  term chunk: {sorted(leaf.term_chunk.terms)}")
    for cluster in published.clusters:
        for shared in cluster.iter_shared_chunks():
            print(f"\nshared chunk over {sorted(shared.domain)}: "
                  f"{[sorted(s) for s in shared.subrecords]}")

    # --- verify the guarantee -------------------------------------------
    report = audit(published)
    print(f"\naudit: {report.summary()}")
    print(
        "the identifying pair is no longer observable: lower-bound support of "
        f"{{madonna, viagra}} = {published.lower_bound_support({'madonna', 'viagra'})}"
    )

    # --- reconstruct a possible original dataset -------------------------
    world = reconstruct(published, seed=0)
    print(f"\none reconstructed world ({len(world)} records):")
    for record in world.to_lists():
        print(f"  {record}")


if __name__ == "__main__":
    main()

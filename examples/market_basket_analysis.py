"""Scenario: releasing a retail transaction log for market-basket analysis.

A retailer wants to let an external analyst mine frequent itemsets and
association rules from its sales log (the POS-style workload of the paper's
evaluation) without exposing any customer's identifiable basket.  The
example compares what the analyst can still learn after

* disassociation (this paper),
* DiffPart differential privacy (Chen et al. 2011), and
* global suppression,

mirroring the paper's Figure 11 comparison at laptop scale.

Run with::

    python examples/market_basket_analysis.py
"""

from __future__ import annotations

from repro import anonymize, reconstruct
from repro.analysis.queries import top_terms
from repro.baselines.diffpart import publish_with_diffpart
from repro.baselines.suppression import anonymize_with_suppression
from repro.datasets.real_proxies import load_proxy
from repro.metrics import relative_error, relative_error_reconstructed, top_k_deviation, tkd_reconstructed
from repro.mining.fpgrowth import mine_top_k


def main() -> None:
    # a scaled-down POS-style sales log (see DESIGN.md for the proxy details)
    sales = load_proxy("POS", scale=0.004, seed=3, domain_scale=0.15)
    print(f"sales log: {sales.stats().as_row()}\n")

    print("top products in the original log:")
    for product, support in top_terms(sales, count=5):
        print(f"  {product:12s} {support}")

    # ------------------------------------------------------------------ #
    # disassociation
    # ------------------------------------------------------------------ #
    published = anonymize(sales, k=5, m=2, max_cluster_size=30)
    world = reconstruct(published, seed=1)
    disassociation_tkd = tkd_reconstructed(sales, published, top_k=100, max_size=2, seed=1)
    disassociation_re = relative_error_reconstructed(sales, published, rank_range=(0, 20), seed=1)

    print("\nfrequent pairs the analyst recovers from a reconstructed world:")
    original_pairs = [i for i, _s in mine_top_k(sales, top_k=40, max_size=2) if len(i) == 2][:5]
    for pair in original_pairs:
        print(
            f"  {pair}: original support {sales.support(pair)}, "
            f"reconstructed {world.support(pair)}"
        )

    # ------------------------------------------------------------------ #
    # baselines
    # ------------------------------------------------------------------ #
    diffpart = publish_with_diffpart(sales, epsilon=1.0, seed=3)
    diffpart_tkd = top_k_deviation(sales, diffpart.dataset, top_k=100, max_size=2)
    diffpart_re = relative_error(sales, diffpart.dataset, rank_range=(0, 20))

    sample = sales.sample(600, seed=0)
    suppressed = anonymize_with_suppression(sample, k=5, m=2)

    print("\ncomparison (lower is better):")
    print(f"  {'method':16s} {'tKd':>6s} {'re(top terms)':>14s}")
    print(f"  {'disassociation':16s} {disassociation_tkd:6.2f} {disassociation_re:14.2f}")
    print(f"  {'diffpart':16s} {diffpart_tkd:6.2f} {diffpart_re:14.2f}")
    print(
        f"  suppression keeps only {len(suppressed.dataset.domain)} of "
        f"{len(sample.domain)} products ({(1 - suppressed.term_loss) * 100:.0f}%) "
        f"with any associations at all"
    )

    print(
        "\nshape reproduced from the paper: disassociation preserves the frequent-"
        "itemset structure and pair supports almost intact, while differential "
        "privacy and suppression destroy most of the long tail."
    )


if __name__ == "__main__":
    main()

"""Scenario: quantifying identity-disclosure risk before and after release.

A data owner wants to justify the anonymization to a privacy officer: how
many users could an adversary with m-term background knowledge single out if
the raw log were released, and how does that change after disassociation?
This example runs the attack model of Section 2 of the paper on a synthetic
click-stream and prints the before/after comparison.

Run with::

    python examples/adversary_simulation.py
"""

from __future__ import annotations

from repro import anonymize
from repro.analysis.attack import published_candidates, simulate_attack, vulnerable_combinations
from repro.datasets.real_proxies import load_proxy


def main() -> None:
    clicks = load_proxy("WV2", scale=0.003, seed=13, domain_scale=0.1)
    print(f"click-stream log: {clicks.stats().as_row()}")

    k, m = 5, 2
    published = anonymize(clicks, k=k, m=m, max_cluster_size=30)
    report = simulate_attack(clicks, published)

    print(f"\nattack model: adversary knows up to m={m} terms per user, k={k}")
    print(f"  {report.summary()}\n")

    # show a handful of concrete identifying combinations and their fate
    examples = sorted(vulnerable_combinations(clicks, k, m).items(), key=lambda p: p[1])[:5]
    print("examples of identifying background knowledge and their candidate sets:")
    print(f"  {'background knowledge':45s} {'raw release':>12s} {'disassociated':>14s}")
    for combo, support in examples:
        candidates = published_candidates(published, combo)
        after = "unreconstructable" if candidates == 0 else f"{candidates} candidates"
        print(f"  {str(combo):45s} {support:12d} {after:>14s}")

    print(
        "\nevery combination that used to match fewer than k users now either cannot "
        "be reconstructed at all or matches at least k candidate records — the "
        "k^m-anonymity guarantee of the paper."
    )


if __name__ == "__main__":
    main()

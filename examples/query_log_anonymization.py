"""Scenario: publishing a web-search query log with sensitive terms.

This is the workload that motivates the paper's introduction: a search
engine wants to share per-user query-term sets with analysts.  Terms cannot
be generalized (the query strings *are* the value) and most terms cannot be
classified as sensitive or non-sensitive up front — but a handful (health
conditions, adult content) are known to be sensitive and should additionally
get l-diversity protection.

The example:

1. builds a synthetic query log with a realistic skewed vocabulary,
2. anonymizes it with disassociation, marking the known sensitive terms,
3. shows that sensitive terms never appear in record or shared chunks
   (so they cannot be linked to any quasi-identifying combination), and
4. round-trips the publication through JSON, the way it would be shared.

Run with::

    python examples/query_log_anonymization.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import AnonymizationParams, Disassociator, TransactionDataset, audit
from repro.datasets.io import read_disassociated_json, write_disassociated_json

SENSITIVE_TERMS = {"hiv test", "depression", "bankruptcy", "gambling help"}

COMMON_QUERIES = [
    "weather", "news", "maps", "youtube", "facebook", "recipes", "football",
    "flights", "hotels", "netflix", "amazon", "iphone", "android", "python",
    "java", "translate", "pizza delivery", "car insurance", "bank login",
    "online banking", "music", "movies", "weather tomorrow", "train times",
]


def build_query_log(num_users: int = 400, seed: int = 7) -> TransactionDataset:
    """Synthesize a query log: common queries with a Zipf-ish skew, plus a
    small fraction of users issuing sensitive queries."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(COMMON_QUERIES))]
    records = []
    for _ in range(num_users):
        history = set()
        for _ in range(rng.randint(2, 8)):
            history.add(rng.choices(COMMON_QUERIES, weights=weights, k=1)[0])
        if rng.random() < 0.08:
            history.add(rng.choice(sorted(SENSITIVE_TERMS)))
        records.append(history)
    return TransactionDataset(records)


def main() -> None:
    log = build_query_log()
    print(f"query log: {log.stats().as_row()}")
    print(f"sensitive queries present: {sorted(log.domain & SENSITIVE_TERMS)}\n")

    params = AnonymizationParams(
        k=5, m=2, max_cluster_size=30, sensitive_terms=frozenset(SENSITIVE_TERMS)
    )
    engine = Disassociator(params)
    published = engine.anonymize(log)
    report = engine.last_report
    print(
        f"anonymized {report.num_records} users into {report.num_clusters} clusters "
        f"({report.num_record_chunks} record chunks, {report.num_shared_chunks} shared chunks) "
        f"in {report.total_seconds:.2f}s"
    )
    print(f"audit: {audit(published).summary()}")

    # sensitive terms are only ever published inside term chunks, so no
    # combination of quasi-identifying queries can be linked to them with
    # probability better than 1/|cluster|
    linked = published.record_chunk_terms() & SENSITIVE_TERMS
    print(f"sensitive terms linked to other queries: {sorted(linked) or 'none'}")
    for leaf in published.simple_clusters():
        overlap = leaf.term_chunk.terms & SENSITIVE_TERMS
        if overlap:
            print(
                f"  cluster {leaf.label}: sensitive {sorted(overlap)} hidden among "
                f"{leaf.size} users (association probability <= {1 / leaf.size:.2f})"
            )

    # share the publication as JSON and re-load it, as a data consumer would
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "query_log.published.json"
        write_disassociated_json(published, path)
        loaded = read_disassociated_json(path)
        print(
            f"\nround-tripped publication: {len(path.read_text()) // 1024} KiB of JSON, "
            f"{loaded.total_records()} users, k={loaded.k}, m={loaded.m}"
        )


if __name__ == "__main__":
    main()

"""Sharded streaming pipeline vs the single-pass engine, across workloads.

Three workloads exercise the streaming subsystem beyond the paper's QUEST
shape: QUEST itself (planted itemset structure), the Zipf market basket
(no structure, heavy skew -- the adversarial case for VERPART) and the
session click-stream (strong per-section locality -- the workload where
HORPART-guided routing should beat hash routing on utility).

For each workload the benchmark runs

* the single-pass engine (the PR-1 encoded backend), and
* the sharded streaming pipeline (4 shards, bounded windows) with both
  routing strategies,

asserting that every sharded publication passes the independent global
k^m-anonymity audit, that peak resident records stay under the
``max_records_in_memory`` bound, and that no record is lost or duplicated
by routing.  Timings, the memory-bound evidence and the tlost utility of
each path land in ``BENCH_sharded.json``, which the CI perf gate compares
against the committed baseline.
"""

from __future__ import annotations

import os
import time

from repro.core.engine import AnonymizationParams, Disassociator
from repro.core.verification import audit
from repro.datasets.quest import generate_quest
from repro.datasets.scenarios import generate_clickstream, generate_zipf_basket
from repro.metrics import tlost
from repro.stream import ShardedPipeline, StreamParams

from benchmarks.conftest import emit, run_once, write_bench_json

#: Anonymization parameters shared by every run (paper defaults).
PARAMS = dict(k=5, m=2, max_cluster_size=30)

#: Shards and memory bound of the sharded runs; the bound forces several
#: windows per shard on every workload so the windowed path is actually
#: exercised (not a degenerate one-window-per-shard run).
SHARDS = 4
MAX_RECORDS_IN_MEMORY = 600


def _workloads() -> dict:
    return {
        "QUEST": generate_quest(
            num_transactions=5000, domain_size=1000, avg_transaction_size=10.0, seed=0
        ),
        "ZIPF": generate_zipf_basket(
            num_transactions=4000, domain_size=800, avg_basket_size=8.0, seed=0
        ),
        "CLICKSTREAM": generate_clickstream(
            num_sessions=4000, num_pages=800, num_sections=16, seed=0
        ),
    }


def _run_sharded(dataset, strategy: str) -> tuple[dict, object]:
    pipeline = ShardedPipeline(
        AnonymizationParams(verify=False, **PARAMS),
        StreamParams(
            shards=SHARDS,
            max_records_in_memory=MAX_RECORDS_IN_MEMORY,
            strategy=strategy,
        ),
    )
    start = time.perf_counter()
    published = pipeline.anonymize(dataset)
    elapsed = time.perf_counter() - start
    report = pipeline.last_report
    # Hard guarantees of the subsystem, checked on every benchmark run:
    assert audit(published).ok, f"{strategy}: global audit failed"
    assert report.peak_resident_records <= MAX_RECORDS_IN_MEMORY, (
        f"{strategy}: memory bound violated "
        f"({report.peak_resident_records} > {MAX_RECORDS_IN_MEMORY})"
    )
    assert published.total_records() == len(dataset), f"{strategy}: records lost in routing"
    payload = {
        "wall_seconds": elapsed,
        "phases": report.phase_timings(),
        "peak_resident_records": report.peak_resident_records,
        "shard_records": report.shard_records,
        "shard_windows": report.shard_windows,
        "num_clusters": report.num_clusters,
        "boundary_repair_rounds": report.repair.rounds,
        "boundary_demotions": report.repair.total_demoted(),
        "audit_ok": True,
        "tlost": tlost(dataset, published),
    }
    return payload, published


def run_sharded_scale() -> dict:
    """Run every workload through both paths and return the payload."""
    results: dict = {
        "cpu_count": os.cpu_count(),
        "params": f"k=5, m=2, max_cluster_size=30, shards={SHARDS}, "
        f"max_records_in_memory={MAX_RECORDS_IN_MEMORY}",
        "workloads": {},
    }
    for name, dataset in _workloads().items():
        engine = Disassociator(AnonymizationParams(verify=False, **PARAMS))
        start = time.perf_counter()
        single = engine.anonymize(dataset)
        single_seconds = time.perf_counter() - start

        hash_payload, _ = _run_sharded(dataset, "hash")
        horpart_payload, _ = _run_sharded(dataset, "horpart")
        results["workloads"][name] = {
            "records": len(dataset),
            "domain": len(dataset.domain),
            "single_pass_seconds": single_seconds,
            "tlost_single": tlost(dataset, single),
            "sharded_hash": hash_payload,
            "sharded_horpart": horpart_payload,
            "sharded_vs_single": hash_payload["wall_seconds"] / single_seconds,
        }
    # Determinism: the sharded path must publish byte-identical datasets
    # across runs (routing, windowing and merge are all order-stable).
    small = generate_zipf_basket(num_transactions=800, domain_size=200, seed=3)
    results["deterministic"] = (
        _run_sharded(small, "hash")[1].to_dict() == _run_sharded(small, "hash")[1].to_dict()
    )
    return results


def test_sharded_scale(benchmark):
    payload = run_once(benchmark, run_sharded_scale)
    rows = []
    for name, entry in payload["workloads"].items():
        rows.append(
            {
                "workload": name,
                "single s": entry["single_pass_seconds"],
                "sharded s": entry["sharded_hash"]["wall_seconds"],
                "ratio": entry["sharded_vs_single"],
                "tlost single": entry["tlost_single"],
                "tlost hash": entry["sharded_hash"]["tlost"],
                "tlost horpart": entry["sharded_horpart"]["tlost"],
            }
        )
    emit(
        "Sharded streaming vs single pass (4 shards, bounded windows)",
        rows,
        "streaming trades a constant factor of time and some cross-shard "
        "associations for a hard memory bound; horpart routing recovers utility.",
    )
    write_bench_json("sharded", payload)
    assert payload["deterministic"]
    for entry in payload["workloads"].values():
        # The sharded path pays routing + spill I/O + global verify; it must
        # stay within a small constant factor of the single pass.
        assert entry["sharded_vs_single"] < 5.0

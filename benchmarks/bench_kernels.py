"""Kernel micro-benchmarks: numpy primitives vs their Python references.

Three micro-benches isolate the primitives of :mod:`repro.core.kernels` at
the batch sizes the kernels are built for (see ``PACKED_MIN_ROWS`` -- the
packed kernels only engage above ~1k rows, where vectorization beats
CPython's small-int bitops):

* **HORPART counting** -- term supports of record subsets, the per-node
  quantity HORPART maintains: ``Counter``-style per-record updates vs one
  gather + ``bincount`` over the contiguous id buffer (QUEST 5k x 1k, the
  committed benchmark configuration).
* **combination check** -- greedy k^m chunk-domain selection plus the
  whole-chunk ``is_km_anonymous`` DFS on a large chunk: per-candidate
  bigint AND/popcount walks vs one vectorized AND + ``bitwise_count`` per
  accepted batch over the packed uint64 matrix.
* **row assembly** -- shared-chunk sub-record reassembly from term row
  masks: per-row bigint shifts vs one ``unpackbits``.
* **wave check** -- all cross-cluster pair verdicts (the ``bad``
  adjacency the wave pre-pass feeds the greedy replay), a per-pair
  bigint loop vs one ``WaveBatch`` AND + popcount sweep, measured on
  *both* sides of the packed crossover: the paper's default
  small-cluster shape (where the bigints win, which is why the
  ``packed_min_rows`` knob routes it to them) and a wide 240-row shape
  (where the sweep amortizes).  This is the wave VERPART and REFINE ride.

Alongside the micro timings, the payload records end-to-end ``to_dict``
equivalence booleans (forced ``python`` vs ``numpy`` kernels, and
streaming with vs without shard-lifetime vocabulary reuse) plus the numpy
pipeline's phase timings; ``BENCH_kernels.json`` is gated in CI by
``perf_gate.py`` like every other baseline.  Timings are min-of-N over a
deterministic workload, as for the other committed baselines.
"""

from __future__ import annotations

import os
import random
import time
from collections import Counter

from repro.core import kernels
from repro.core.anonymity import BitsetChunkChecker, _masks_are_km_anonymous
from repro.core.engine import AnonymizationParams, Disassociator
from repro.core.vocab import EncodedDataset
from repro.datasets.quest import generate_quest
from repro.stream import ShardedPipeline, StreamParams

from benchmarks.conftest import emit, run_once, write_bench_json

#: Mirrors the BENCH_speedup.json configuration exactly.
QUEST_RECORDS = 5000
QUEST_DOMAIN = 1000
QUEST_AVG_LEN = 10.0
PARAMS = dict(k=5, m=2, max_cluster_size=30)

#: Large-chunk shape for the packed-mask micro-benches: past the
#: PACKED_MIN_ROWS crossover, the regime the kernels exist for
#: (dataset-level k^m checks, large max_cluster_size / max_join_size runs).
CHUNK_ROWS = 8000
CHUNK_TERMS = 220
CHUNK_DENSITY = 0.08

#: Timed quantities take the best of this many runs (min-of-N).
REPEATS = 5


def _best(function, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        function(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _bench_counting(encoded: EncodedDataset) -> dict:
    """Per-node support counting over HORPART-like row subsets."""
    rng = random.Random(0)
    total = len(encoded.records)
    # Node sizes spanning the partition tree: the root, mid splits, leaves.
    node_rows = [
        sorted(rng.sample(range(total), size))
        for size in (total, total // 2, total // 4, 1000, 200, 60, 30)
    ]

    def python_side():
        for rows in node_rows:
            counts = Counter()
            for row in rows:
                counts.update(encoded.records[row])

    buffer = kernels.RecordIdBuffer(encoded.records)
    arrays = [kernels.np.array(rows, dtype="int64") for rows in node_rows]

    def numpy_side():
        for rows in arrays:
            buffer.counts(rows)

    python_seconds = _best(python_side)
    numpy_seconds = _best(numpy_side)
    return {
        "nodes": [len(rows) for rows in node_rows],
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": python_seconds / numpy_seconds,
    }


def _chunk_masks() -> dict:
    rng = random.Random(1)
    masks = {}
    for index in range(CHUNK_TERMS):
        mask = 0
        for row in range(CHUNK_ROWS):
            if rng.random() < CHUNK_DENSITY:
                mask |= 1 << row
        if mask:
            masks[f"t{index:03d}"] = mask
    return masks


def _bench_combination_check(masks: dict) -> dict:
    """Greedy selection + whole-chunk k^m DFS on a large packed chunk."""
    k, m = PARAMS["k"], PARAMS["m"]
    ordered_masks = list(masks.values())

    def run(backend: str):
        checker = BitsetChunkChecker(
            masks, k, m, num_rows=CHUNK_ROWS, kernels_backend=backend
        )
        accepted = [term for term in sorted(masks) if checker.try_add(term)]
        if backend == "numpy":
            km = kernels.packed_km_anonymous(ordered_masks, CHUNK_ROWS, k, m)
        else:
            km = _masks_are_km_anonymous(ordered_masks, -1, 0, m, k)
        return accepted, km

    python_result = run("python")
    numpy_result = run("numpy")
    assert python_result == numpy_result  # decisions must not move
    python_seconds = _best(run, "python")
    numpy_seconds = _best(run, "numpy")
    return {
        "rows": CHUNK_ROWS,
        "terms": len(masks),
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": python_seconds / numpy_seconds,
    }


def _bench_assembly(masks: dict) -> dict:
    """Shared-chunk sub-record reassembly from term row masks."""
    term_masks = sorted(masks.items())[:40]
    python_result = kernels.assemble_subrecords_python(term_masks, CHUNK_ROWS)
    numpy_result = kernels.assemble_subrecords(term_masks, CHUNK_ROWS)
    assert python_result == numpy_result
    python_seconds = _best(kernels.assemble_subrecords_python, term_masks, CHUNK_ROWS)
    numpy_seconds = _best(kernels.assemble_subrecords, term_masks, CHUNK_ROWS)
    return {
        "rows": CHUNK_ROWS,
        "terms": len(term_masks),
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": python_seconds / numpy_seconds,
    }


#: Wave micro-bench shapes: both sides of the packed crossover.  The
#: *small* shape is the paper's default regime (hundreds of ~30-row
#: clusters), where per-pair bigint checks win -- that is exactly why
#: ``packed_min_rows`` routes small work away from the matrix.  The
#: *large* shape (fewer, 240-row clusters with wide candidate lists,
#: REFINE's joint-pair regime) is where the sweep amortizes and the
#: wave pays off.
WAVE_SHAPES = {
    "small": dict(clusters=200, rows=30, terms=12, density=0.35),
    "large": dict(clusters=40, rows=240, terms=40, density=0.2),
}


def _wave_groups(
    clusters: int, rows: int, terms: int, density: float
) -> list[list[int]]:
    rng = random.Random(2)
    groups = []
    for _ in range(clusters):
        masks = []
        for _index in range(terms):
            mask = 0
            for row in range(rows):
                if rng.random() < density:
                    mask |= 1 << row
            if mask.bit_count() >= PARAMS["k"]:
                masks.append(mask)
        if masks:
            groups.append(masks)
    return groups


def _bench_wave_shape(groups: list[list[int]], rows: int) -> dict:
    """All pair verdicts: per-pair bigint loop vs one ``WaveBatch`` sweep.

    Both arms produce the full ``bad`` adjacency (bit ``j`` of ``bad[i]``
    set when the pair overlaps on fewer than ``k`` rows) for every group.
    The wave pre-pass needs *all* pairs -- the greedy replay's acceptance
    sequence is unknowable ahead of time -- so this, not a greedy
    selection, is the kernel's actual job.
    """
    k = PARAMS["k"]

    def per_pair():
        out = {}
        for index, masks in enumerate(groups):
            count = len(masks)
            bad = [0] * count
            any_bad = False
            for i in range(count):
                left = masks[i]
                for j in range(i + 1, count):
                    overlap = (left & masks[j]).bit_count()
                    if 0 < overlap < k:
                        bad[i] |= 1 << j
                        bad[j] |= 1 << i
                        any_bad = True
            if any_bad:
                out[index] = bad
        return out

    def waved():
        wave = kernels.WaveBatch(k)
        for masks in groups:
            wave.add_group(masks, rows)
        return wave.bad_pair_masks()

    assert per_pair() == waved()  # verdicts must not move
    per_pair_seconds = _best(per_pair)
    waved_seconds = _best(waved)
    return {
        "clusters": len(groups),
        "rows_per_cluster": rows,
        "per_pair_seconds": per_pair_seconds,
        "waved_seconds": waved_seconds,
        "speedup": per_pair_seconds / waved_seconds,
    }


def _bench_wave_check() -> dict:
    """Both wave shapes: the crossover the routing knob encodes."""
    return {
        name: _bench_wave_shape(
            _wave_groups(
                shape["clusters"], shape["rows"], shape["terms"], shape["density"]
            ),
            shape["rows"],
        )
        for name, shape in WAVE_SHAPES.items()
    }


def _equivalence(dataset) -> tuple[dict, dict]:
    """End-to-end equality booleans + min-of-N phase timings per backend."""
    published = {}
    phases = {}
    for backend in ("python", "numpy"):
        engine = Disassociator(AnonymizationParams(kernels=backend, **PARAMS))
        best_total = float("inf")
        for _ in range(REPEATS):
            result = engine.anonymize(dataset)
            report = engine.last_report
            # The workload is deterministic; keep the least-noisy run's
            # timings (these are gated by perf_gate, single samples drift).
            if report.total_seconds < best_total:
                best_total = report.total_seconds
                phases[backend] = report.phase_timings()
        published[backend] = result.to_dict()

    stream_outputs = {}
    for reuse in (True, False):
        pipeline = ShardedPipeline(
            AnonymizationParams(**PARAMS),
            StreamParams(shards=4, max_records_in_memory=1000, reuse_vocabulary=reuse),
        )
        stream_outputs[reuse] = pipeline.anonymize(dataset).to_dict()

    flags = {
        "outputs_identical_kernels": published["python"] == published["numpy"],
        "outputs_identical_vocab_reuse": stream_outputs[True] == stream_outputs[False],
    }
    return flags, phases


def run_kernel_benches() -> dict:
    """Run the three micro-benches and the end-to-end equivalence checks."""
    dataset = generate_quest(
        num_transactions=QUEST_RECORDS,
        domain_size=QUEST_DOMAIN,
        avg_transaction_size=QUEST_AVG_LEN,
        seed=0,
    )
    encoded = EncodedDataset.from_dataset(dataset)
    masks = _chunk_masks()
    flags, phases = _equivalence(dataset)
    return {
        "dataset": {
            "generator": "QUEST",
            "records": QUEST_RECORDS,
            "domain": QUEST_DOMAIN,
            "avg_record_length": QUEST_AVG_LEN,
        },
        "params": "k=5, m=2, max_cluster_size=30",
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "numpy_available": kernels.numpy_available(),
        "packed_min_rows": kernels.packed_min_rows(),
        "horpart_counting": _bench_counting(encoded),
        "combination_check": _bench_combination_check(masks),
        "row_assembly": _bench_assembly(masks),
        "wave_check": _bench_wave_check(),
        "equivalence": flags,
        "phases_python": phases["python"],
        "phases_numpy": phases["numpy"],
    }


def test_kernel_benches(benchmark):
    if not kernels.numpy_available():
        import pytest

        pytest.skip("numpy >= 2.0 not importable; kernel comparison needs both backends")
    payload = run_once(benchmark, run_kernel_benches)
    emit(
        "Vectorized kernels vs Python fallback (micro-benches, min-of-5)",
        [
            {
                "kernel": name,
                "python_ms": payload[name]["python_seconds"] * 1e3,
                "numpy_ms": payload[name]["numpy_seconds"] * 1e3,
                "speedup": payload[name]["speedup"],
            }
            for name in ("horpart_counting", "combination_check", "row_assembly")
        ],
        "identical outputs on both backends; numpy engages above the packed-rows threshold.",
    )
    emit(
        "Cross-cluster wave check vs per-cluster bigint checkers (both crossover sides)",
        [
            {
                "shape": (
                    f"{name}: {shape['clusters']} clusters x "
                    f"{shape['rows_per_cluster']} rows"
                ),
                "per_pair_ms": shape["per_pair_seconds"] * 1e3,
                "waved_ms": shape["waved_seconds"] * 1e3,
                "speedup": shape["speedup"],
            }
            for name, shape in payload["wave_check"].items()
        ],
        "identical greedy selections; packed_min_rows routes each shape to its winner.",
    )
    write_bench_json("kernels", payload)
    assert payload["equivalence"]["outputs_identical_kernels"]
    assert payload["equivalence"]["outputs_identical_vocab_reuse"]
    # The kernels must earn their keep at the shapes they engage on.
    assert payload["horpart_counting"]["speedup"] >= 1.5
    assert payload["combination_check"]["speedup"] >= 1.5
    # The wave sweep competes with CPython's (fast) small-bigint AND +
    # bit_count, so parity-ish ratios are expected; the structural wins
    # (memo absorption, pre-pass sentinels) show up in BENCH_refine.json
    # counters instead.  No floor assert: the ratio straddles 1.0.

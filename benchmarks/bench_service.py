"""Warm service vs cold one-shot calls: what the service facade amortizes.

The scenario the service layer exists for: N anonymization requests over
the same deployment.  Two ways to serve them:

* **warm** -- one long-lived :class:`~repro.service.AnonymizationService`
  handles all N requests, so the interpreter, the imported libraries, the
  resolved kernel backend, the engine and the interning vocabulary are paid
  once and shared;
* **cold** -- each request is a fresh one-shot invocation (the pre-service
  pattern: a CLI call or a script invoking ``anonymize()`` per request),
  i.e. a new Python process that imports the library, reads the input and
  runs the pipeline from scratch.

Both sides read the same committed QUEST transaction file per request and
must publish bit-for-bit identical datasets.  The interesting number is
``warm_speedup = cold_total / warm_total`` at ``N = 5``; the acceptance
floor is 1.3x (in practice the cold side's interpreter + import + setup
tax dominates and the ratio is far higher).  Timings land in
``BENCH_service.json`` and are gated by ``perf_gate.py`` like every other
benchmark; ``warm_speedup_ok`` is a gated boolean so the floor itself is
regression-checked.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.datasets.io import read_disassociated_json, write_transactions
from repro.datasets.quest import generate_quest
from repro.service import AnonymizationRequest, AnonymizationService, ServiceConfig

from benchmarks.conftest import emit, run_once, write_bench_json

#: The committed QUEST configuration of the acceptance criterion.
QUEST_RECORDS = 2000
QUEST_DOMAIN = 500
QUEST_AVG_LEN = 8.0
QUEST_SEED = 0

#: Requests served per side.
NUM_REQUESTS = 5

#: Anonymization parameters shared by both sides (paper defaults).
SERVICE_CONFIG = ServiceConfig(k=5, m=2, max_cluster_size=30)

#: The cold side: one fresh interpreter per request, running the legacy
#: one-shot entry point end to end (import, read, anonymize, write).
_COLD_SCRIPT = """
import sys, warnings
warnings.simplefilter("ignore", DeprecationWarning)
from repro import anonymize
from repro.datasets.io import read_records, write_disassociated_json
dataset = read_records(sys.argv[1])
published = anonymize(dataset, k=5, m=2, max_cluster_size=30)
write_disassociated_json(published, sys.argv[2])
"""


def _cold_env() -> dict:
    """Subprocess environment with this repro checkout importable."""
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def run_service_comparison() -> dict:
    """Serve N requests warm and cold; return the comparison payload."""
    dataset = generate_quest(
        num_transactions=QUEST_RECORDS,
        domain_size=QUEST_DOMAIN,
        avg_transaction_size=QUEST_AVG_LEN,
        seed=QUEST_SEED,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        data_path = Path(tmp) / "quest.txt"
        write_transactions(dataset, data_path)

        # Warm: one service, N requests (setup included in the total -- the
        # warm side pays its one-time costs inside the measurement).
        start = time.perf_counter()
        with AnonymizationService(SERVICE_CONFIG) as service:
            warm_setup_seconds = time.perf_counter() - start
            warm_request_seconds = []
            warm_results = []
            for _ in range(NUM_REQUESTS):
                request_start = time.perf_counter()
                result = service.run(AnonymizationRequest(data_path, mode="batch"))
                warm_request_seconds.append(time.perf_counter() - request_start)
                warm_results.append(result)
            warm_total_seconds = time.perf_counter() - start
            warm_path = Path(tmp) / "warm.json"
            warm_results[-1].save(warm_path)

        # Cold: N fresh interpreters, each running the one-shot entry point.
        env = _cold_env()
        cold_path = Path(tmp) / "cold.json"
        cold_call_seconds = []
        for _ in range(NUM_REQUESTS):
            call_start = time.perf_counter()
            subprocess.run(
                [sys.executable, "-c", _COLD_SCRIPT, str(data_path), str(cold_path)],
                check=True,
                env=env,
            )
            cold_call_seconds.append(time.perf_counter() - call_start)
        cold_total_seconds = sum(cold_call_seconds)

        warm_dict = read_disassociated_json(warm_path).to_dict()
        cold_dict = read_disassociated_json(cold_path).to_dict()
        outputs_identical = warm_dict == cold_dict and all(
            result.to_dict() == warm_results[0].to_dict() for result in warm_results
        )

    warm_speedup = cold_total_seconds / warm_total_seconds
    return {
        "dataset": {
            "generator": "QUEST",
            "records": QUEST_RECORDS,
            "domain": QUEST_DOMAIN,
            "avg_record_length": QUEST_AVG_LEN,
            "seed": QUEST_SEED,
        },
        "params": "defaults (k=5, m=2, max_cluster_size=30, refine+verify)",
        "num_requests": NUM_REQUESTS,
        "cpu_count": os.cpu_count(),
        "warm_total_seconds": warm_total_seconds,
        "warm_setup_seconds": warm_setup_seconds,
        "warm_request_seconds": warm_request_seconds,
        "cold_total_seconds": cold_total_seconds,
        "cold_call_seconds": cold_call_seconds,
        "warm_speedup": warm_speedup,
        "warm_speedup_ok": warm_speedup >= 1.3,
        "outputs_identical": outputs_identical,
    }


def test_warm_service_beats_cold_calls(benchmark):
    """The warm service must beat N cold one-shot calls by >= 1.3x."""
    payload = run_once(benchmark, run_service_comparison)
    emit(
        f"Warm AnonymizationService vs {NUM_REQUESTS} cold one-shot calls (QUEST)",
        [
            {
                "side": "cold (fresh process per request)",
                "seconds": payload["cold_total_seconds"],
                "speedup": 1.0,
            },
            {
                "side": "warm (one service, shared state)",
                "seconds": payload["warm_total_seconds"],
                "speedup": payload["warm_speedup"],
            },
        ],
        "service-grade API: amortized warm state, identical publications.",
    )
    write_bench_json("service", payload)
    assert payload["outputs_identical"]
    assert payload["warm_speedup"] >= 1.3

"""Cost of durability: checkpoint overhead and crash-resume speedup.

Two questions an operator asks before enabling checkpointed runs:

* **What does the manifest + per-shard snapshot durability cost?**
  Every run instruments its own durability work (manifest write,
  record indexing, snapshot serialization + fsync) in
  ``report.checkpoint_seconds``, so the overhead factor is computed
  *within* a run as ``wall / (wall - checkpoint_seconds)`` -- both
  sides of the ratio share one scheduler/thermal state, which makes the
  estimate stable where a cross-run off-vs-on wall ratio swings with
  machine noise far beyond the budget's headroom.  The min factor over
  N checkpointed rounds is asserted against ``MAX_CHECKPOINT_OVERHEAD``
  (1.15x) and recorded as ``checkpoint_overhead_ok``, which the CI perf
  gate keeps true; uncheckpointed wall times are reported alongside as
  corroboration.
* **What does resuming actually save?**  A run is crashed right before
  the merge (every shard finished and snapshotted, via the deterministic
  fault harness), then finished twice: once with ``resume=True`` (loads
  the snapshots, skips every shard) and once cold from scratch.  The
  resumed publication must be bit-for-bit identical to the uninterrupted
  one, and ``resume_faster_than_cold`` must stay true -- resuming that
  does not beat re-running would make the whole checkpoint subsystem
  pointless.

Timings land in ``BENCH_resilience.json`` for the CI perf gate.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import faults
from repro.core.engine import AnonymizationParams
from repro.core.verification import audit
from repro.datasets.quest import generate_quest
from repro.exceptions import FaultInjected
from repro.stream import ShardedPipeline, StreamParams

from benchmarks.conftest import emit, run_once, write_bench_json

PARAMS = AnonymizationParams(k=5, m=2, max_cluster_size=30, verify=False)

SHARDS = 4
MAX_RECORDS_IN_MEMORY = 600

#: Checkpointing budget: durable manifests + snapshots may cost at most
#: this factor over the identical run without them.
MAX_CHECKPOINT_OVERHEAD = 1.15

#: Wall-time measurements per configuration (min is reported: the
#: interesting quantity is the cost floor, not scheduler noise).  One
#: untimed warmup of each configuration runs first so allocator and
#: page-cache warmup land on neither side of the ratio.
ROUNDS = 4


def _dataset():
    return generate_quest(
        num_transactions=4000, domain_size=800, avg_transaction_size=10.0, seed=0
    )


def _run(records, spill_dir, *, checkpoint, resume=False):
    pipeline = ShardedPipeline(
        PARAMS,
        StreamParams(
            shards=SHARDS,
            max_records_in_memory=MAX_RECORDS_IN_MEMORY,
            spill_dir=spill_dir,
            checkpoint=checkpoint,
        ),
    )
    start = time.perf_counter()
    published = pipeline.run(iter(records), resume=resume)
    return published, time.perf_counter() - start, pipeline.last_report


def _bench_resilience(records, tmp_path) -> dict:
    # -- checkpoint overhead: instrumented within-run factor ------------- #
    _run(records, tmp_path / "warm-plain", checkpoint=False)
    _run(records, tmp_path / "warm-ckpt", checkpoint=True)
    plain_times, checkpointed_times, overhead_factors = [], [], []
    for round_index in range(ROUNDS):
        _, seconds, _ = _run(
            records, tmp_path / f"plain-{round_index}", checkpoint=False
        )
        plain_times.append(seconds)
        published, seconds, report = _run(
            records, tmp_path / f"ckpt-{round_index}", checkpoint=True
        )
        checkpointed_times.append(seconds)
        overhead_factors.append(seconds / (seconds - report.checkpoint_seconds))
    assert audit(published, k=PARAMS.k, m=PARAMS.m).ok
    oracle_json = json.dumps(published.to_dict(), sort_keys=True)
    overhead = min(overhead_factors)

    # -- resume vs cold rerun after a pre-merge crash -------------------- #
    crash_dir = tmp_path / "crash"
    plan = faults.FaultPlan([faults.FaultSpec("stream.merge", hit=1)])
    with faults.active(plan):
        try:
            _run(records, crash_dir, checkpoint=True)
            raise AssertionError("injected crash did not fire")
        except FaultInjected:
            pass
    resumed, resume_seconds, resume_report = _run(
        records, crash_dir, checkpoint=True, resume=True
    )
    assert resume_report.resumed and resume_report.shards_skipped == SHARDS
    assert json.dumps(resumed.to_dict(), sort_keys=True) == oracle_json
    _, cold_seconds, _ = _run(records, tmp_path / "cold", checkpoint=True)

    return {
        "workload": {
            "records": len(records),
            "shards": SHARDS,
            "max_records_in_memory": MAX_RECORDS_IN_MEMORY,
            "k": PARAMS.k,
            "m": PARAMS.m,
        },
        "checkpoint_off_seconds": min(plain_times),
        "checkpoint_on_seconds": min(checkpointed_times),
        "checkpoint_overhead_factor": overhead,
        "checkpoint_overhead_budget": MAX_CHECKPOINT_OVERHEAD,
        "checkpoint_overhead_ok": overhead <= MAX_CHECKPOINT_OVERHEAD,
        "checkpoint_write_seconds": report.checkpoint_seconds,
        "resume_seconds": resume_seconds,
        "cold_rerun_seconds": cold_seconds,
        "resume_speedup_factor": cold_seconds / resume_seconds,
        "resume_faster_than_cold": resume_seconds < cold_seconds,
        "resume_output_identical": True,  # asserted above
        "audit_ok": True,  # asserted above
    }


@pytest.mark.benchmark(group="resilience")
def test_bench_checkpoint_overhead_and_resume(benchmark, tmp_path):
    """Measure durability overhead + resume speedup; gate both as booleans."""
    records = list(_dataset())
    payload = run_once(benchmark, _bench_resilience, records, tmp_path)
    assert payload["checkpoint_overhead_ok"], (
        f"checkpointing costs {payload['checkpoint_overhead_factor']:.3f}x, "
        f"budget is {MAX_CHECKPOINT_OVERHEAD}x"
    )
    assert payload["resume_faster_than_cold"]
    write_bench_json("resilience", payload)
    emit(
        "Resilience: checkpoint overhead and crash-resume (4000 QUEST records)",
        [
            {
                "configuration": "checkpoint off",
                "seconds": round(payload["checkpoint_off_seconds"], 3),
            },
            {
                "configuration": "checkpoint on",
                "seconds": round(payload["checkpoint_on_seconds"], 3),
            },
            {
                "configuration": "resume after pre-merge crash",
                "seconds": round(payload["resume_seconds"], 3),
            },
            {
                "configuration": "cold rerun",
                "seconds": round(payload["cold_rerun_seconds"], 3),
            },
        ],
        "not a paper figure: operational cost of the fault-tolerance layer "
        f"(overhead {payload['checkpoint_overhead_factor']:.3f}x, resume "
        f"{payload['resume_speedup_factor']:.1f}x faster than cold)",
    )

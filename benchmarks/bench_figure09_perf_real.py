"""Figure 9: anonymization cost on the real-dataset proxies.

The paper's absolute numbers come from a C++ implementation on 2012
hardware; what we reproduce is the shape — cost roughly proportional to the
dataset size across POS/WV1/WV2 and insensitive to k.
"""

from __future__ import annotations

from repro.experiments import figure09

from benchmarks.conftest import emit, run_once, write_bench_json


def test_figure09a_time_per_dataset(benchmark, bench_config):
    rows = run_once(benchmark, figure09.run_fig9a, bench_config)
    emit(
        "Figure 9a: anonymization time per dataset (seconds, scaled proxies)",
        rows,
        "paper: POS (largest) takes the longest; WV1 and WV2 are much cheaper.",
    )
    write_bench_json("figure09a", {"rows": rows})
    by_name = {row["dataset"]: row for row in rows}
    assert by_name["POS"]["seconds"] >= by_name["WV1"]["seconds"]
    assert by_name["POS"]["records"] > by_name["WV2"]["records"] > by_name["WV1"]["records"]


def test_figure09b_time_vs_k(benchmark, bench_config):
    rows = run_once(benchmark, figure09.run_fig9b, bench_config)
    emit(
        "Figure 9b: anonymization time vs k (POS proxy)",
        rows,
        "paper: running time is not significantly affected by k.",
    )
    write_bench_json("figure09b", {"rows": rows})
    times = [row["seconds"] for row in rows]
    assert max(times) <= 5.0 * max(min(times), 1e-9)

"""CI perf-regression gate over the committed ``BENCH_*.json`` baselines.

Compares a freshly produced benchmark payload against the committed
baseline and fails (exit code 1) when any phase timing regressed beyond a
tolerance factor:

* every numeric key ending in ``_seconds`` (at any nesting depth) whose
  baseline value is above a noise floor must satisfy
  ``current <= tolerance * baseline``;
* every numeric key under a ``counters`` / ``pipeline_counters`` object
  (work counters: merge attempts, passes, ...) whose baseline value is at
  least ``COUNTER_FLOOR`` must satisfy the same ratio -- the workloads are
  deterministic, so a counter blow-up is an algorithmic regression (a dead
  memo, an extra pass) even when a fast runner hides it in the wall time;
* every boolean that is ``true`` in the baseline (e.g.
  ``outputs_identical``, ``audit_ok``) must still be ``true``;
* a key present in the baseline but missing from the current payload is a
  failure (a silently dropped measurement is not a pass).

The tolerance is deliberately generous (default 2x): CI runners are shared
and noisy, and the gate exists to catch step-function regressions (an
accidental O(n^2), a dropped fast path), not single-digit-percent drift.
Standalone on purpose -- no ``repro`` imports -- so it runs before the
package is even installed.

Usage::

    python benchmarks/perf_gate.py BASELINE.json CURRENT.json [--tolerance 2.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Baseline timings below this many seconds are pure scheduling noise and
#: are not gated (a 0.4ms phase "regressing" 3x means nothing).
DEFAULT_NOISE_FLOOR = 0.05

#: Baseline counters below this many units are not gated (going from 2 to
#: 5 memo skips is shape noise, going from 500 to 1500 attempts is not).
COUNTER_FLOOR = 10

DEFAULT_TOLERANCE = 2.0

#: Dict keys whose numeric children are gated as work counters.
COUNTER_SECTIONS = ("counters", "pipeline_counters")


def iter_gated_values(payload, prefix="", in_counters=False):
    """Yield ``(dotted_key, value, kind)`` for every gated entry.

    ``kind`` is ``"bool"``, ``"seconds"`` or ``"counter"``; gated entries
    are booleans, numeric ``*_seconds`` keys at any nesting depth, and
    numeric keys under a counter section.
    """
    if not isinstance(payload, dict):
        return
    for key, value in sorted(payload.items()):
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from iter_gated_values(
                value,
                prefix=f"{dotted}.",
                in_counters=in_counters or key in COUNTER_SECTIONS,
            )
        elif isinstance(value, bool):
            yield dotted, value, "bool"
        elif isinstance(value, (int, float)) and key.endswith("_seconds"):
            yield dotted, float(value), "seconds"
        elif isinstance(value, (int, float)) and in_counters:
            yield dotted, float(value), "counter"


def compare(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
) -> tuple[list[str], list[str]]:
    """Compare payloads; returns (report lines, failure lines)."""
    current_values = {
        key: (value, kind) for key, value, kind in iter_gated_values(current)
    }
    lines, failures = [], []
    for key, base_value, kind in iter_gated_values(baseline):
        if key not in current_values:
            failures.append(f"{key}: present in baseline but missing from current run")
            continue
        value, _current_kind = current_values[key]
        if kind == "bool":
            if base_value and value is not True:
                failures.append(f"{key}: baseline true, current {value!r}")
            else:
                lines.append(f"{key}: {base_value} -> {value}  ok")
            continue
        unit = "s" if kind == "seconds" else ""
        floor = noise_floor if kind == "seconds" else COUNTER_FLOOR
        fmt = (lambda v: f"{v:.4f}s") if kind == "seconds" else (lambda v: f"{v:g}")
        if base_value < floor:
            lines.append(
                f"{key}: {fmt(base_value)} -> {fmt(value)}  "
                f"(below {floor}{unit} floor, not gated)"
            )
            continue
        ratio = value / base_value if base_value else float("inf")
        verdict = "ok" if ratio <= tolerance else f"REGRESSION (> {tolerance:.1f}x)"
        lines.append(f"{key}: {fmt(base_value)} -> {fmt(value)}  ({ratio:.2f}x)  {verdict}")
        if ratio > tolerance:
            failures.append(
                f"{key}: {fmt(base_value)} -> {fmt(value)} ({ratio:.2f}x > {tolerance:.1f}x)"
            )
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed slowdown factor (default {DEFAULT_TOLERANCE}x)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=DEFAULT_NOISE_FLOOR,
        help=f"baseline seconds below which a phase is not gated (default {DEFAULT_NOISE_FLOOR})",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    current = json.loads(Path(args.current).read_text(encoding="utf-8"))
    lines, failures = compare(
        baseline, current, tolerance=args.tolerance, noise_floor=args.noise_floor
    )
    print(f"perf gate: {args.current} vs baseline {args.baseline}")
    for line in lines:
        print(f"  {line}")
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: no regression beyond {args.tolerance:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())

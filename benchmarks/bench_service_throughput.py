"""Service throughput at 1 vs N workers through the submit/HTTP path.

The PR-7 scenario: a deployment answering a burst of concurrent
anonymization requests.  The benchmark drives the same burst of QUEST
requests through the queued ``submit`` path twice -- once with a
single-worker service, once with ``workers = 2`` -- and records requests
per second plus p50/p99 request latency from the service's own
``stats()`` histograms.  A third section runs part of the burst through
the live HTTP front door (``POST /anonymize``) and checks the response
publication bit-for-bit against ``service.run()``.

What the gate asserts on this 1-CPU container:

* ``outputs_identical`` -- every publication (single-worker,
  multi-worker, HTTP) is bit-for-bit identical.  The worker pool and the
  front door must never change results.
* ``multi_worker_ok`` -- multi-worker throughput is no worse than the
  single-worker baseline within ``MULTI_WORKER_SLACK``.  The pipeline is
  GIL-bound pure Python, so on one CPU two workers buy overlap of the
  small non-GIL slices at best; the honest claim is "no regression", not
  "2x".  The slack factor (0.70, i.e. multi >= 0.70x single) absorbs
  scheduler noise on the shared CI box; the measured ratio is recorded
  as ``multi_worker_rps_ratio`` so drift stays visible in the JSON diff.

Timings land in ``BENCH_service_throughput.json`` and are gated by
``perf_gate.py`` like every other benchmark.
"""

from __future__ import annotations

import os
import time

from repro.datasets.quest import generate_quest
from repro.service import AnonymizationService, ServiceConfig

from benchmarks.conftest import emit, run_once, write_bench_json

#: The request burst: NUM_REQUESTS datasets, distinct seeds so the vocab
#: keeps growing across requests (the shared-interning contention case).
NUM_REQUESTS = 8
QUEST_RECORDS = 400
QUEST_DOMAIN = 120
QUEST_AVG_LEN = 5.0

#: Requests round-tripped through the HTTP front door.
HTTP_REQUESTS = 3

#: Anonymization parameters (paper defaults at burst-friendly scale).
BASE_CONFIG = ServiceConfig(k=5, m=2, max_cluster_size=30, max_pending=NUM_REQUESTS)

#: Worker counts compared by the benchmark.
MULTI_WORKERS = 2

#: Acceptance floor: multi-worker req/s >= slack * single-worker req/s.
#: On a 1-CPU, GIL-bound container the pool cannot speed the burst up;
#: the gate guards against the pool *slowing it down* (lock contention,
#: queue overhead), with 30% headroom for shared-runner scheduler noise.
MULTI_WORKER_SLACK = 0.70


def _burst():
    """The deterministic request burst shared by every side."""
    return [
        generate_quest(
            num_transactions=QUEST_RECORDS,
            domain_size=QUEST_DOMAIN,
            avg_transaction_size=QUEST_AVG_LEN,
            seed=seed,
        )
        for seed in range(NUM_REQUESTS)
    ]


def _serve_burst(workers: int, datasets) -> dict:
    """Push the whole burst through one service; return timing + outputs."""
    config = BASE_CONFIG.with_overrides(workers=workers)
    with AnonymizationService(config) as service:
        start = time.perf_counter()
        jobs = [service.submit(dataset, mode="batch") for dataset in datasets]
        results = [job.result(timeout=600) for job in jobs]
        total_seconds = time.perf_counter() - start
        stats = service.stats()
    latency = stats["latency"]["request_seconds"]
    return {
        "workers": workers,
        "total_seconds": total_seconds,
        "requests_per_second": len(datasets) / total_seconds,
        "p50_seconds": latency["p50_seconds"],
        "p99_seconds": latency["p99_seconds"],
        "queue_wait_p99_seconds": stats["latency"]["queue_wait_seconds"][
            "p99_seconds"
        ],
        "worker_utilization": stats["workers"]["utilization"],
        "publications": [result.to_dict() for result in results],
    }


def _serve_http(datasets, expected) -> dict:
    """Round-trip part of the burst through the live HTTP front door."""
    import json
    import urllib.request

    from repro.service import ServiceHTTPServer

    server = ServiceHTTPServer(
        AnonymizationService(BASE_CONFIG.with_overrides(workers=MULTI_WORKERS)),
        port=0,
    )
    server.start()
    try:
        seconds = []
        identical = True
        for dataset, want in zip(datasets, expected):
            body = json.dumps(
                {"records": [sorted(record) for record in dataset], "mode": "batch"}
            ).encode("utf-8")
            request = urllib.request.Request(
                server.url + "/anonymize",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            start = time.perf_counter()
            with urllib.request.urlopen(request, timeout=600) as response:
                payload = json.load(response)
            seconds.append(time.perf_counter() - start)
            identical = identical and payload["publication"] == want
    finally:
        server.close(drain=False)
    return {
        "requests": len(seconds),
        "request_seconds": seconds,
        "outputs_identical": identical,
    }


def run_throughput_comparison() -> dict:
    """Serve the burst at 1 and N workers; return the comparison payload."""
    datasets = _burst()
    single = _serve_burst(1, datasets)
    multi = _serve_burst(MULTI_WORKERS, datasets)
    http = _serve_http(datasets[:HTTP_REQUESTS], single["publications"])

    outputs_identical = (
        single["publications"] == multi["publications"]
        and http["outputs_identical"]
    )
    ratio = multi["requests_per_second"] / single["requests_per_second"]
    payload = {
        "dataset": {
            "generator": "QUEST",
            "records": QUEST_RECORDS,
            "domain": QUEST_DOMAIN,
            "avg_record_length": QUEST_AVG_LEN,
            "seeds": list(range(NUM_REQUESTS)),
        },
        "params": "k=5, m=2, max_cluster_size=30, refine+verify",
        "num_requests": NUM_REQUESTS,
        "cpu_count": os.cpu_count(),
        "single_worker": {k: v for k, v in single.items() if k != "publications"},
        "multi_worker": {k: v for k, v in multi.items() if k != "publications"},
        "http": http,
        "multi_worker_rps_ratio": ratio,
        "multi_worker_slack": MULTI_WORKER_SLACK,
        "multi_worker_ok": ratio >= MULTI_WORKER_SLACK,
        "outputs_identical": outputs_identical,
    }
    return payload


def test_service_throughput_one_vs_n_workers(benchmark):
    """N-worker throughput must not regress vs 1 worker; outputs identical."""
    payload = run_once(benchmark, run_throughput_comparison)
    emit(
        f"Service throughput, {NUM_REQUESTS} queued requests (QUEST)",
        [
            {
                "workers": side["workers"],
                "req_per_s": round(side["requests_per_second"], 3),
                "p50_s": round(side["p50_seconds"], 4),
                "p99_s": round(side["p99_seconds"], 4),
            }
            for side in (payload["single_worker"], payload["multi_worker"])
        ],
        "service layer (not in the paper): worker pool must preserve "
        "publications bit-for-bit and not regress throughput on 1 CPU.",
    )
    write_bench_json("service_throughput", payload)
    assert payload["outputs_identical"]
    assert payload["multi_worker_ok"]

"""Figure 8: information loss of disassociation on synthetic (Quest) data."""

from __future__ import annotations

from repro.experiments import figure08

from benchmarks.conftest import emit, run_once


def test_figure08a_08b_dataset_size_sweep(benchmark, bench_config):
    rows = run_once(benchmark, figure08.run_fig8a_8b, bench_config)
    emit(
        "Figure 8a/8b: metrics vs dataset size (synthetic)",
        rows,
        "paper: dataset size has little effect because anonymization is per-cluster; "
        "re improves slightly as terms become more frequent.",
    )
    tkds = [row["tkd"] for row in rows]
    # dataset size does not blow up the loss of top-K itemsets
    assert max(tkds) - min(tkds) <= 0.3
    # re does not get worse as the dataset grows
    assert rows[-1]["re"] <= rows[0]["re"] + 0.3


def test_figure08c_domain_size_sweep(benchmark, bench_config):
    rows = run_once(benchmark, figure08.run_fig8c, bench_config)
    emit(
        "Figure 8c: metrics vs domain size (synthetic)",
        rows,
        "paper: a larger (more skewed) domain mostly affects the distribution tail; "
        "tKd stays flat, re slightly deteriorates.",
    )
    tkds = [row["tkd"] for row in rows]
    assert max(tkds) - min(tkds) <= 0.3
    assert rows[-1]["re"] >= rows[0]["re"] - 0.3


def test_figure08d_record_length_sweep(benchmark, bench_config):
    rows = run_once(benchmark, figure08.run_fig8d, bench_config)
    emit(
        "Figure 8d: metrics vs average record length (synthetic)",
        rows,
        "paper: longer records increase tKd-a and tlost (more chunks, more rare "
        "combinations) but improve re (higher term supports); tKd stays near 0.",
    )
    assert rows[-1]["tkd"] <= 0.5
    # longer records make terms more frequent, improving the pair-support estimates
    assert rows[-1]["re"] <= rows[0]["re"] + 0.2

"""Interned-core speedup: encoded backend vs the string reference.

End-to-end ``anonymize()`` on the synthetic QUEST benchmark dataset at the
paper's default parameters (k=5, m=2, max_cluster_size=30, refine and
verify enabled), run against

* the ``string`` backend -- the seed (reference) implementation,
* the ``encoded`` backend with ``jobs=1``, and
* the ``encoded`` backend with ``jobs=4`` (per-cluster VERPART fan-out).

All three must publish *identical* datasets; the timings land in
``BENCH_speedup.json`` so the perf trajectory is tracked across PRs.  The
``jobs=4 < jobs=1`` assertion only applies on multi-core hosts: on a
single core the fan-out is pure process overhead by construction (and
since the engine caps the effective job count at ``os.cpu_count()``, the
``jobs=4`` configuration simply runs serially there).

Each configuration is timed as the best of ``REPEATS`` runs: baselines
are compared across shared CI runners, and min-of-N strips scheduler
noise from a deterministic workload.
"""

from __future__ import annotations

import os
import time

from repro.core.engine import AnonymizationParams, Disassociator
from repro.datasets.quest import generate_quest

from benchmarks.conftest import emit, run_once, write_bench_json

#: QUEST benchmark dataset: the generator's default shape at bench scale.
QUEST_RECORDS = 5000
QUEST_DOMAIN = 1000
QUEST_AVG_LEN = 10.0

#: Timed quantities take the best of this many runs (min-of-N).
REPEATS = 3


def _timed_run(dataset, **param_overrides):
    best_elapsed = float("inf")
    best_report = None
    published = None
    for _ in range(REPEATS):
        engine = Disassociator(AnonymizationParams(**param_overrides))
        start = time.perf_counter()
        published = engine.anonymize(dataset)
        elapsed = time.perf_counter() - start
        if elapsed < best_elapsed:
            best_elapsed = elapsed
            best_report = engine.last_report
    return published, best_elapsed, best_report


def run_speedup_comparison() -> dict:
    """Run the three configurations and return the comparison payload."""
    dataset = generate_quest(
        num_transactions=QUEST_RECORDS,
        domain_size=QUEST_DOMAIN,
        avg_transaction_size=QUEST_AVG_LEN,
        seed=0,
    )
    # The encoded configurations run first: the string reference allocates
    # heavily and measurably degrades allocator locality for everything
    # timed after it in the same process (~15% on the encoded pipeline),
    # which would pollute exactly the numbers the perf gate tracks.
    encoded_pub, encoded_seconds, encoded_report = _timed_run(dataset, backend="encoded")
    jobs4_pub, jobs4_seconds, jobs4_report = _timed_run(
        dataset, backend="encoded", jobs=4
    )
    string_pub, string_seconds, string_report = _timed_run(dataset, backend="string")
    identical = (
        string_pub.to_dict() == encoded_pub.to_dict() == jobs4_pub.to_dict()
    )
    return {
        "dataset": {
            "generator": "QUEST",
            "records": QUEST_RECORDS,
            "domain": QUEST_DOMAIN,
            "avg_record_length": QUEST_AVG_LEN,
        },
        "params": "defaults (k=5, m=2, max_cluster_size=30, refine+verify)",
        "cpu_count": os.cpu_count(),
        "string_seconds": string_seconds,
        "encoded_jobs1_seconds": encoded_seconds,
        "encoded_jobs4_seconds": jobs4_seconds,
        "speedup_encoded_vs_string": string_seconds / encoded_seconds,
        "jobs4_vs_jobs1": jobs4_seconds / encoded_seconds,
        "outputs_identical": identical,
        "phases": {
            "string": string_report.phase_timings(),
            "encoded_jobs1": encoded_report.phase_timings(),
            "encoded_jobs4": jobs4_report.phase_timings(),
        },
    }


def test_encoded_backend_speedup(benchmark):
    payload = run_once(benchmark, run_speedup_comparison)
    emit(
        "Interned-core speedup: string vs encoded backend (QUEST, default params)",
        [
            {
                "backend": "string (seed)",
                "seconds": payload["string_seconds"],
                "speedup": 1.0,
            },
            {
                "backend": "encoded jobs=1",
                "seconds": payload["encoded_jobs1_seconds"],
                "speedup": payload["speedup_encoded_vs_string"],
            },
            {
                "backend": "encoded jobs=4",
                "seconds": payload["encoded_jobs4_seconds"],
                "speedup": payload["string_seconds"] / payload["encoded_jobs4_seconds"],
            },
        ],
        "interned execution core: same output, representation-level speedup.",
    )
    write_bench_json("speedup", payload)
    assert payload["outputs_identical"]
    assert payload["speedup_encoded_vs_string"] >= 3.0
    if (os.cpu_count() or 1) >= 2:
        # The fan-out can only beat the serial path when there is real
        # hardware parallelism; on 1 core it is process overhead only.
        assert payload["encoded_jobs4_seconds"] < payload["encoded_jobs1_seconds"]

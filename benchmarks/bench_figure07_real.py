"""Figure 7: information loss of disassociation on the real-dataset proxies.

Benchmarks 7a-7d; each prints the regenerated series and asserts the
qualitative shape the paper reports (not the absolute values — the datasets
are synthetic proxies at reduced scale).
"""

from __future__ import annotations

from repro.experiments import figure07

from benchmarks.conftest import emit, run_once


def test_figure07a_information_loss_per_dataset(benchmark, bench_config):
    rows = run_once(benchmark, figure07.run_fig7a, bench_config)
    emit(
        "Figure 7a: tKd-a / tKd / re-a / re / tlost (k=5, m=2)",
        rows,
        figure07.paper_reference("7a"),
    )
    for row in rows:
        # reconstructing across chunks recovers most top-K itemsets
        assert row["tkd"] <= row["tkd_a"] + 0.05
        assert row["tkd"] <= 0.5
    pos = next(row for row in rows if row["dataset"] == "POS")
    # POS has the highest |D|/|T| ratio: reconstruction sharply improves re
    assert pos["re"] <= pos["re_a"]


def test_figure07b_tkd_vs_k(benchmark, bench_config):
    rows = run_once(benchmark, figure07.run_fig7b, bench_config)
    emit("Figure 7b: tKd-a / tKd vs k (POS)", rows, figure07.paper_reference("7b"))
    # the metrics based on the most frequent itemsets are only mildly affected by k
    first, last = rows[0], rows[-1]
    assert last["tkd"] <= first["tkd"] + 0.3
    assert all(0.0 <= row["tkd_a"] <= 1.0 for row in rows)


def test_figure07c_re_and_tlost_vs_k(benchmark, bench_config):
    rows = run_once(benchmark, figure07.run_fig7c, bench_config)
    emit("Figure 7c: re-a / re / tlost vs k (POS)", rows, figure07.paper_reference("7c"))
    first, last = rows[0], rows[-1]
    # information loss grows with k, but does not explode
    assert last["re"] >= first["re"] - 0.1
    assert last["tlost"] >= first["tlost"] - 0.05


def test_figure07d_re_vs_term_frequency_and_reconstructions(benchmark, bench_config):
    rows = run_once(benchmark, figure07.run_fig7d, bench_config)
    emit(
        "Figure 7d: re vs term-frequency range, 1/2/5/10 reconstructions (POS)",
        rows,
        figure07.paper_reference("7d"),
    )
    assert rows
    most_frequent = rows[0]
    # the most frequent terms are reported accurately regardless of averaging
    assert most_frequent["re_r1"] <= 0.6
    for row in rows:
        for count in (1, 2, 5, 10):
            assert 0.0 <= row[f"re_r{count}"] <= 2.0

"""Ablations A2 and A3: the REFINE step, and suppression as an alternative.

A2 quantifies what the joint-cluster refinement buys (Section 3's motivation:
terms that are rare per-cluster but frequent globally keep their
associations).  A3 reproduces the related-work claim that suppression-based
k^m-anonymity destroys associations for most of the domain.
"""

from __future__ import annotations

from repro.experiments import ablations

from benchmarks.conftest import emit, run_once


def test_ablation_refine_on_off(benchmark, bench_config):
    rows = run_once(benchmark, ablations.run_refine_ablation, bench_config)
    emit(
        "Ablation A2: REFINE enabled vs disabled (POS proxy)",
        rows,
        "expectation: with REFINE disabled, globally-frequent-but-locally-rare terms "
        "stay stranded in term chunks (tlost and re-a no better than with REFINE).",
    )
    with_refine = next(row for row in rows if row["refine"])
    without_refine = next(row for row in rows if not row["refine"])
    assert with_refine["tlost"] <= without_refine["tlost"] + 1e-9
    assert with_refine["re_a"] <= without_refine["re_a"] + 0.05


def test_ablation_suppression_term_survival(benchmark, bench_config):
    rows = run_once(benchmark, ablations.run_suppression_comparison, bench_config)
    emit(
        "Ablation A3: fraction of the domain keeping associations (WV1 sample)",
        rows,
        "related work (paper Section 8): suppression removes ~90% of query-log "
        "terms even for low k, m; disassociation keeps associations for far more.",
    )
    by_method = {row["method"]: row["terms_with_associations"] for row in rows}
    assert by_method["disassociation"] >= by_method["suppression"]

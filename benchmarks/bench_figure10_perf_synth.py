"""Figure 10: anonymization cost on synthetic data (scaling shape)."""

from __future__ import annotations

from repro.experiments import figure10

from benchmarks.conftest import emit, run_once, write_bench_json


def test_figure10a_time_vs_dataset_size(benchmark, bench_config):
    rows = run_once(benchmark, figure10.run_fig10a, bench_config)
    emit(
        "Figure 10a: anonymization time vs dataset size (synthetic)",
        rows,
        "paper: time grows linearly with the number of records.",
    )
    write_bench_json("figure10a", {"rows": rows})
    # cost grows with size...
    assert rows[-1]["seconds"] >= rows[0]["seconds"]
    # ...and stays near-linear: per-record cost at the largest size is within
    # a small factor of the per-record cost at the smallest size
    ratio = figure10.linearity_ratio(rows, "records")
    assert ratio <= 4.0


def test_figure10b_time_vs_domain_size(benchmark, bench_config):
    rows = run_once(benchmark, figure10.run_fig10b, bench_config)
    emit(
        "Figure 10b: anonymization time vs domain size (synthetic)",
        rows,
        "paper: time scales gently (sub-linearly) with the domain size.",
    )
    write_bench_json("figure10b", {"rows": rows})
    times = [row["seconds"] for row in rows]
    domains = [row["domain"] for row in rows]
    # going from the smallest to the largest domain must not blow up the cost
    # by more than the domain growth factor itself
    growth = domains[-1] / domains[0]
    assert times[-1] <= max(times[0], 1e-3) * growth * 2.0

"""REFINE hot-path benchmark: reference driver vs the incremental driver.

Same fixed configuration as ``BENCH_speedup.json`` (QUEST 5k x 1000, k=5,
m=2, max_cluster_size=30).  Two quantities land in ``BENCH_refine.json``:

* an isolated REFINE comparison on identical VERPART clusters -- the
  reference driver (every pass re-attempts every adjacent pair from
  scratch) against the incremental driver (rejected-pair memo, per-leaf
  mask caches, deferred chunk materialization) on the *same* bitset
  selector, so the measured ratio is the driver overhaul alone;
* a wave-batching comparison on the same clusters -- the incremental
  driver with the cross-cluster pair wave and sub-record arena enabled
  (the default) against the same driver with the wave crossover pushed
  out of reach, so every merge attempt takes the per-cluster bigint
  path; the measured ratio is the wave batching alone, on the paper's
  default small-cluster configuration;
* the full encoded ``jobs=1`` pipeline's phase timings and the driver's
  merge-attempt counters (attempted / applied / skipped-by-memo /
  prefiltered / waved), which the CI perf gate tracks alongside the
  timings -- counter regressions (an accidental extra pass, a dead memo,
  a silently disengaged wave) are caught even when a fast machine hides
  them in the wall time.

Every timed quantity is the best of ``REPEATS`` runs: the committed
baselines are compared across CI runners and shared laptops, and min-of-N
is the standard way to strip scheduler noise from a deterministic
workload.
"""

from __future__ import annotations

import os
import time

from repro.core import kernels
from repro.core.engine import (
    AnonymizationParams,
    AnonymizationReport,
    Disassociator,
    HorizontalPhase,
    PipelineContext,
    VerticalPhase,
)
from repro.core.refine import RefineStats, refine
from repro.datasets.quest import generate_quest

from benchmarks.conftest import emit, run_once, write_bench_json

#: Mirrors the BENCH_speedup.json configuration exactly.
QUEST_RECORDS = 5000
QUEST_DOMAIN = 1000
QUEST_AVG_LEN = 10.0
PARAMS = dict(k=5, m=2, max_cluster_size=30)
MAX_JOIN_SIZE = 8 * PARAMS["max_cluster_size"]

#: Timed quantities take the best of this many runs (min-of-N).
REPEATS = 3


def _verpart_clusters(dataset):
    params = AnonymizationParams(**PARAMS)
    ctx = PipelineContext(
        params=params,
        report=AnonymizationReport(),
        dataset=dataset,
        working=dataset,
    )
    HorizontalPhase().run(ctx)
    VerticalPhase().run(ctx)
    return ctx.clusters


def _best_refine_seconds(dataset, memoize: bool, min_rows=None):
    best = float("inf")
    refined = None
    stats = None
    for _ in range(REPEATS):
        # Rebuild the clusters through the (deterministic) HORPART+VERPART
        # phases rather than deepcopying a template: REFINE always receives
        # clusters whose term bitmasks VERPART just registered in the
        # weak-keyed cache, and a deepcopy would silently drop that warm
        # cache and bill the re-encoding to whichever arm runs first.
        working = _verpart_clusters(dataset)
        stats = RefineStats()  # fresh per run; the workload is deterministic
        start = time.perf_counter()
        with kernels.use(None, min_rows):
            refined = refine(
                working,
                PARAMS["k"],
                PARAMS["m"],
                max_join_size=MAX_JOIN_SIZE,
                use_bitsets=True,
                memoize=memoize,
                stats=stats,
            )
        best = min(best, time.perf_counter() - start)
    return best, refined, stats


def _best_pipeline_report(dataset):
    best_elapsed = float("inf")
    best_report = None
    published = None
    for _ in range(REPEATS):
        engine = Disassociator(AnonymizationParams(**PARAMS))
        start = time.perf_counter()
        published = engine.anonymize(dataset)
        elapsed = time.perf_counter() - start
        if elapsed < best_elapsed:
            best_elapsed = elapsed
            best_report = engine.last_report
    return best_report, published


def run_refine_hotpath() -> dict:
    """Run the driver comparison and the instrumented pipeline."""
    dataset = generate_quest(
        num_transactions=QUEST_RECORDS,
        domain_size=QUEST_DOMAIN,
        avg_transaction_size=QUEST_AVG_LEN,
        seed=0,
    )
    reference_seconds, reference_refined, _ = _best_refine_seconds(
        dataset, memoize=False
    )
    optimized_seconds, optimized_refined, stats = _best_refine_seconds(
        dataset, memoize=True
    )
    outputs_identical = [c.to_dict() for c in reference_refined] == [
        c.to_dict() for c in optimized_refined
    ]

    # Wave batching alone: same incremental driver, crossover out of reach
    # so every merge attempt takes the per-cluster bigint path.
    per_cluster_seconds, per_cluster_refined, per_cluster_stats = _best_refine_seconds(
        dataset, memoize=True, min_rows=1 << 30
    )
    wave_outputs_identical = [c.to_dict() for c in optimized_refined] == [
        c.to_dict() for c in per_cluster_refined
    ]
    wave_engaged = (
        stats.pairs_waved > 0 and per_cluster_stats.pairs_waved == 0
    ) or not kernels.numpy_available()

    report, _published = _best_pipeline_report(dataset)

    return {
        "dataset": {
            "generator": "QUEST",
            "records": QUEST_RECORDS,
            "domain": QUEST_DOMAIN,
            "avg_record_length": QUEST_AVG_LEN,
        },
        "params": "k=5, m=2, max_cluster_size=30, max_join_size=240",
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "refine_reference_seconds": reference_seconds,
        "refine_optimized_seconds": optimized_seconds,
        "refine_driver_speedup": reference_seconds / optimized_seconds,
        "outputs_identical": outputs_identical,
        "refine_per_cluster_seconds": per_cluster_seconds,
        "refine_waved_seconds": optimized_seconds,
        "wave_speedup": per_cluster_seconds / optimized_seconds,
        "wave_outputs_identical": wave_outputs_identical,
        "wave_engaged": wave_engaged,
        # The last optimized run's counters: the workload is deterministic,
        # so these are exact reproducible quantities, gated by perf_gate.
        "counters": stats.as_dict(),
        "phases": report.phase_timings(),
        "pipeline_counters": report.counters(),
    }


def test_refine_hotpath(benchmark):
    payload = run_once(benchmark, run_refine_hotpath)
    emit(
        "REFINE driver overhaul: reference vs incremental (QUEST, fixed config)",
        [
            {
                "driver": "reference (re-attempt everything)",
                "seconds": payload["refine_reference_seconds"],
                "speedup": 1.0,
            },
            {
                "driver": "incremental (memo + caches)",
                "seconds": payload["refine_optimized_seconds"],
                "speedup": payload["refine_driver_speedup"],
            },
        ],
        "identical joint clusters; the driver skips work instead of redoing it.",
    )
    emit(
        "REFINE wave batching: per-cluster bigint checks vs one wave matrix per pass",
        [
            {
                "checks": "per-cluster (crossover out of reach)",
                "seconds": payload["refine_per_cluster_seconds"],
                "speedup": 1.0,
            },
            {
                "checks": "waved (default crossover)",
                "seconds": payload["refine_waved_seconds"],
                "speedup": payload["wave_speedup"],
            },
        ],
        "identical joint clusters; all pair verdicts from one AND+popcount sweep.",
    )
    write_bench_json("refine", payload)
    assert payload["outputs_identical"]
    assert payload["wave_outputs_identical"]
    assert payload["wave_engaged"]
    # The reference driver shares the per-attempt fast paths, so this
    # isolates the driver-level machinery only; it must never be a loss.
    assert payload["refine_driver_speedup"] >= 1.0
    counters = payload["counters"]
    # the memo and prefilter must actually absorb re-attempts
    assert counters["skipped_by_memo"] > 0
    assert counters["prefiltered"] > 0
    assert counters["merges_attempted"] < counters["pairs_considered"]

"""REFINE hot-path benchmark: reference driver vs the incremental driver.

Same fixed configuration as ``BENCH_speedup.json`` (QUEST 5k x 1000, k=5,
m=2, max_cluster_size=30).  Two quantities land in ``BENCH_refine.json``:

* an isolated REFINE comparison on identical VERPART clusters -- the
  reference driver (every pass re-attempts every adjacent pair from
  scratch) against the incremental driver (rejected-pair memo, per-leaf
  mask caches, deferred chunk materialization) on the *same* bitset
  selector, so the measured ratio is the driver overhaul alone;
* the full encoded ``jobs=1`` pipeline's phase timings and the driver's
  merge-attempt counters (attempted / applied / skipped-by-memo /
  prefiltered), which the CI perf gate tracks alongside the timings --
  counter regressions (an accidental extra pass, a dead memo) are caught
  even when a fast machine hides them in the wall time.

Every timed quantity is the best of ``REPEATS`` runs: the committed
baselines are compared across CI runners and shared laptops, and min-of-N
is the standard way to strip scheduler noise from a deterministic
workload.
"""

from __future__ import annotations

import copy
import os
import time

from repro.core.engine import (
    AnonymizationParams,
    AnonymizationReport,
    Disassociator,
    HorizontalPhase,
    PipelineContext,
    VerticalPhase,
)
from repro.core.refine import RefineStats, refine
from repro.datasets.quest import generate_quest

from benchmarks.conftest import emit, run_once, write_bench_json

#: Mirrors the BENCH_speedup.json configuration exactly.
QUEST_RECORDS = 5000
QUEST_DOMAIN = 1000
QUEST_AVG_LEN = 10.0
PARAMS = dict(k=5, m=2, max_cluster_size=30)
MAX_JOIN_SIZE = 8 * PARAMS["max_cluster_size"]

#: Timed quantities take the best of this many runs (min-of-N).
REPEATS = 3


def _verpart_clusters(dataset):
    params = AnonymizationParams(**PARAMS)
    ctx = PipelineContext(
        params=params,
        report=AnonymizationReport(),
        dataset=dataset,
        working=dataset,
    )
    HorizontalPhase().run(ctx)
    VerticalPhase().run(ctx)
    return ctx.clusters


def _best_refine_seconds(clusters, memoize: bool):
    best = float("inf")
    refined = None
    stats = None
    for _ in range(REPEATS):
        working = copy.deepcopy(clusters)
        stats = RefineStats()  # fresh per run; the workload is deterministic
        start = time.perf_counter()
        refined = refine(
            working,
            PARAMS["k"],
            PARAMS["m"],
            max_join_size=MAX_JOIN_SIZE,
            use_bitsets=True,
            memoize=memoize,
            stats=stats,
        )
        best = min(best, time.perf_counter() - start)
    return best, refined, stats


def _best_pipeline_report(dataset):
    best_elapsed = float("inf")
    best_report = None
    published = None
    for _ in range(REPEATS):
        engine = Disassociator(AnonymizationParams(**PARAMS))
        start = time.perf_counter()
        published = engine.anonymize(dataset)
        elapsed = time.perf_counter() - start
        if elapsed < best_elapsed:
            best_elapsed = elapsed
            best_report = engine.last_report
    return best_report, published


def run_refine_hotpath() -> dict:
    """Run the driver comparison and the instrumented pipeline."""
    dataset = generate_quest(
        num_transactions=QUEST_RECORDS,
        domain_size=QUEST_DOMAIN,
        avg_transaction_size=QUEST_AVG_LEN,
        seed=0,
    )
    clusters = _verpart_clusters(dataset)

    reference_seconds, reference_refined, _ = _best_refine_seconds(
        clusters, memoize=False
    )
    optimized_seconds, optimized_refined, stats = _best_refine_seconds(
        clusters, memoize=True
    )
    outputs_identical = [c.to_dict() for c in reference_refined] == [
        c.to_dict() for c in optimized_refined
    ]

    report, _published = _best_pipeline_report(dataset)

    return {
        "dataset": {
            "generator": "QUEST",
            "records": QUEST_RECORDS,
            "domain": QUEST_DOMAIN,
            "avg_record_length": QUEST_AVG_LEN,
        },
        "params": "k=5, m=2, max_cluster_size=30, max_join_size=240",
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "refine_reference_seconds": reference_seconds,
        "refine_optimized_seconds": optimized_seconds,
        "refine_driver_speedup": reference_seconds / optimized_seconds,
        "outputs_identical": outputs_identical,
        # The last optimized run's counters: the workload is deterministic,
        # so these are exact reproducible quantities, gated by perf_gate.
        "counters": stats.as_dict(),
        "phases": report.phase_timings(),
        "pipeline_counters": report.counters(),
    }


def test_refine_hotpath(benchmark):
    payload = run_once(benchmark, run_refine_hotpath)
    emit(
        "REFINE driver overhaul: reference vs incremental (QUEST, fixed config)",
        [
            {
                "driver": "reference (re-attempt everything)",
                "seconds": payload["refine_reference_seconds"],
                "speedup": 1.0,
            },
            {
                "driver": "incremental (memo + caches)",
                "seconds": payload["refine_optimized_seconds"],
                "speedup": payload["refine_driver_speedup"],
            },
        ],
        "identical joint clusters; the driver skips work instead of redoing it.",
    )
    write_bench_json("refine", payload)
    assert payload["outputs_identical"]
    # The reference driver shares the per-attempt fast paths, so this
    # isolates the driver-level machinery only; it must never be a loss.
    assert payload["refine_driver_speedup"] >= 1.0
    counters = payload["counters"]
    # the memo and prefilter must actually absorb re-attempts
    assert counters["skipped_by_memo"] > 0
    assert counters["prefiltered"] > 0
    assert counters["merges_attempted"] < counters["pairs_considered"]

"""Figure 11: disassociation vs DiffPart (differential privacy) vs Apriori
(generalization).

The headline comparison of the paper: disassociation preserves far more of
the frequent-itemset structure (tKd, tKd-ML2) and far more accurate pair
supports (re) than either baseline, because it publishes all original terms
and only severs rare associations.
"""

from __future__ import annotations

from repro.experiments import figure11

from benchmarks.conftest import emit, run_once


def test_figure11a_tkd_vs_diffpart(benchmark, bench_config):
    rows = run_once(benchmark, figure11.run_fig11a, bench_config)
    emit(
        "Figure 11a: tKd — disassociation vs DiffPart (lower is better)",
        rows,
        "paper: DiffPart loses >= 75% of the top frequent itemsets; "
        "disassociation loses ~5%.",
    )
    for row in rows:
        assert row["disassociation"] < row["diffpart"], row
    # disassociation stays close to lossless on every dataset
    assert max(row["disassociation"] for row in rows) <= 0.5


def test_figure11b_tkdml2_vs_apriori(benchmark, bench_config):
    rows = run_once(benchmark, figure11.run_fig11b, bench_config)
    emit(
        "Figure 11b: tKd-ML2 — disassociation vs Apriori generalization",
        rows,
        "paper: disassociation clearly better on every dataset, especially POS; "
        "a few rare terms force Apriori to generalize many frequent ones.",
    )
    for row in rows:
        assert row["disassociation"] <= row["apriori"] + 0.05, row


def test_figure11c_re_vs_both_baselines(benchmark, bench_config):
    rows = run_once(benchmark, figure11.run_fig11c, bench_config)
    emit(
        "Figure 11c: re on the most frequent terms — all three methods",
        rows,
        "paper: DiffPart and Apriori exceed re=1 (supports barely usable); "
        "disassociation stays below ~0.2.",
    )
    for row in rows:
        best_baseline = min(row["diffpart"], row["apriori"])
        assert row["disassociation"] <= best_baseline, row
    assert max(row["disassociation"] for row in rows) <= 0.75

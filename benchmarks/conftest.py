"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures at laptop
scale and prints the series next to a short note of the paper's reported
shape, so EXPERIMENTS.md can be refreshed from ``pytest benchmarks/
--benchmark-only`` output.  Each benchmark runs its experiment exactly once
(``benchmark.pedantic(rounds=1, iterations=1)``): the interesting quantity
is the experiment output, not micro-timing stability.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.harness import BENCH_CONFIG, ExperimentConfig, format_table


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The configuration shared by all figure benchmarks."""
    return BENCH_CONFIG


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: Series emitted during the run; flushed into the terminal summary (so they
#: appear in ``pytest benchmarks/ --benchmark-only`` output even without
#: ``-s``) and into ``benchmarks/figure_series.txt``.
_EMITTED: list[str] = []


def emit(title: str, rows, paper_note: str) -> None:
    """Record a regenerated series next to the paper's reported shape."""
    text = "\n".join(
        [f"=== {title} ===", format_table(rows), f"paper shape: {paper_note}"]
    )
    print("\n" + text)
    _EMITTED.append(text)


def write_bench_json(name: str, payload: dict) -> Path:
    """Write machine-readable perf output next to the benchmarks.

    ``BENCH_<name>.json`` files track the perf trajectory across PRs: each
    perf benchmark dumps its phase timings (from
    :class:`~repro.core.engine.AnonymizationReport`) so regressions are
    visible as diffs instead of anecdotes.
    """
    path = Path(__file__).parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Write every regenerated series into the (uncaptured) terminal report."""
    if not _EMITTED:
        return
    terminalreporter.section("regenerated paper figures")
    for block in _EMITTED:
        terminalreporter.write_line(block)
        terminalreporter.write_line("")
    results_path = Path(__file__).parent / "figure_series.txt"
    results_path.write_text("\n\n".join(_EMITTED) + "\n", encoding="utf-8")
    terminalreporter.write_line(f"(series also written to {results_path})")

"""Ablation A1: effect of the HORPART maximum-cluster-size bound.

Not a figure of the paper, but DESIGN.md calls it out: the cluster-size
bound is the knob that trades anonymization cost against the room VERPART
has to keep terms in record chunks.
"""

from __future__ import annotations

from repro.experiments import ablations

from benchmarks.conftest import emit, run_once


def test_ablation_cluster_size(benchmark, bench_config):
    rows = run_once(benchmark, ablations.run_cluster_size_ablation, bench_config)
    emit(
        "Ablation A1: information loss and runtime vs max_cluster_size (POS proxy)",
        rows,
        "expectation: larger clusters cost more time per cluster but give VERPART "
        "more support to work with (tlost / re-a do not increase).",
    )
    assert [row["max_cluster_size"] for row in rows] == sorted(
        row["max_cluster_size"] for row in rows
    )
    smallest, largest = rows[0], rows[-1]
    # larger clusters keep at least as many frequent terms in record chunks
    assert largest["tlost"] <= smallest["tlost"] + 0.1
    for row in rows:
        assert 0.0 <= row["tkd"] <= 1.0

"""Figure 6 (table): characteristics of the experimental datasets.

Regenerates the dataset-statistics table for the three real-dataset proxies
at benchmark scale and checks they match the published shape (domain size,
record-length distribution), plus the default synthetic workload.
"""

from __future__ import annotations

from repro.datasets.quest import generate_quest
from repro.datasets.real_proxies import PROFILES, load_proxy

from benchmarks.conftest import emit, run_once


def _collect_rows(config):
    rows = []
    for name in config.datasets:
        dataset = load_proxy(
            name, scale=config.scale, seed=config.seed, domain_scale=config.domain_scale
        )
        stats = dataset.stats()
        profile = PROFILES[name]
        rows.append(
            {
                "dataset": name,
                "records": stats.num_records,
                "domain": stats.domain_size,
                "max_rec": stats.max_record_size,
                "avg_rec": stats.avg_record_size,
                "paper_records": profile.num_records,
                "paper_domain": profile.domain_size,
                "paper_avg_rec": profile.avg_record_size,
            }
        )
    synthetic = generate_quest(num_transactions=4000, domain_size=1000, seed=config.seed)
    stats = synthetic.stats()
    rows.append(
        {
            "dataset": "QUEST",
            "records": stats.num_records,
            "domain": stats.domain_size,
            "max_rec": stats.max_record_size,
            "avg_rec": stats.avg_record_size,
            "paper_records": 1_000_000,
            "paper_domain": 5_000,
            "paper_avg_rec": 10.0,
        }
    )
    return rows


def test_figure06_dataset_table(benchmark, bench_config):
    rows = run_once(benchmark, _collect_rows, bench_config)
    emit(
        "Figure 6: dataset characteristics (scaled proxies)",
        rows,
        "POS is the largest and densest (|D|/|T| highest), WV1 has the shortest "
        "records, WV2 has the largest domain relative to its size.",
    )
    for row in rows[:3]:
        profile = PROFILES[row["dataset"]]
        assert row["avg_rec"] <= profile.max_record_size
        # the proxies keep the record-length regime of the originals
        assert 0.4 * profile.avg_record_size <= row["avg_rec"] <= 2.0 * profile.avg_record_size

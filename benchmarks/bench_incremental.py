"""Warm incremental delta vs cold full recompute on the persistent store.

The question the incremental store exists to answer: once 100k records
have been anonymized into a :class:`~repro.stream.ShardStore`, what does
publishing a small (1%) append-delta cost compared to re-running the
whole pipeline from scratch?  The warm run revalidates the stored plan,
reuses every clean window snapshot (fingerprint match), anonymizes only
the ~1% of records that landed in each shard's new tail window, and
re-runs the merge + global boundary repair -- so the expected shape is
"merge/verify cost plus epsilon" instead of "anonymize everything".

Append-only on purpose: a delete shifts the arrival-order window
packing of every later record in its shard, invalidating those windows'
fingerprints -- correct (the publication must match a cold run over the
mutated sequence bit-for-bit) but not the fast path this benchmark
budgets.  The differential fuzz suite covers the delete semantics; this
file gates the economics of the common append case:

* ``outputs_identical`` -- the warm delta publication is bit-for-bit
  the cold publication over the mutated 101k-record dataset;
* ``delta_speedup_ok`` -- the warm delta is at least
  ``MIN_DELTA_SPEEDUP`` (3x) faster than that cold run.

Timings land in ``BENCH_incremental.json`` for the CI perf gate.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.engine import AnonymizationParams
from repro.core.verification import audit
from repro.datasets.quest import generate_quest
from repro.stream import IncrementalPipeline, ShardedPipeline, StreamParams

from benchmarks.conftest import emit, run_once, write_bench_json

PARAMS = AnonymizationParams(k=5, m=2, max_cluster_size=30)

SHARDS = 4
#: Smaller windows than the sharded-scale bench on purpose: the warm
#: delta re-anonymizes each shard's partial tail window, so the window
#: bound caps the worst-case recompute at ``shards * bound`` records.
MAX_RECORDS_IN_MEMORY = 2500

#: Base corpus and delta sizes: 100k records warm in the store, then a
#: 1% append published incrementally.
BASE_RECORDS = 100_000
DELTA_RECORDS = 1_000

#: The warm delta must beat the cold recompute by at least this factor;
#: ``delta_speedup_ok`` is gated as a boolean by the CI perf gate.
MIN_DELTA_SPEEDUP = 3.0


def _base_dataset():
    return generate_quest(
        num_transactions=BASE_RECORDS,
        domain_size=1500,
        avg_transaction_size=6.0,
        seed=0,
    )


def _delta_dataset():
    # A different seed over the same domain: the delta looks like the
    # next day's arrivals, not a replay of the base corpus.
    return generate_quest(
        num_transactions=DELTA_RECORDS,
        domain_size=1500,
        avg_transaction_size=6.0,
        seed=1,
    )


def _stream(store_dir=None) -> StreamParams:
    return StreamParams(
        shards=SHARDS,
        max_records_in_memory=MAX_RECORDS_IN_MEMORY,
        store_dir=store_dir,
    )


def _bench_incremental(base, delta, tmp_path) -> dict:
    # -- build the warm store (priced separately: it is the one-time cost)
    pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "store"))
    start = time.perf_counter()
    pipeline.run(append=base)
    build_seconds = time.perf_counter() - start

    # -- warm 1% delta ---------------------------------------------------
    start = time.perf_counter()
    warm = pipeline.run(append=delta)
    warm_seconds = time.perf_counter() - start
    report = pipeline.last_report

    # -- cold full recompute over the mutated dataset --------------------
    start = time.perf_counter()
    cold = ShardedPipeline(PARAMS, _stream()).run(base + delta)
    cold_seconds = time.perf_counter() - start

    identical = json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
        cold.to_dict(), sort_keys=True
    )
    assert audit(warm, k=PARAMS.k, m=PARAMS.m).ok
    speedup = cold_seconds / warm_seconds

    return {
        "workload": {
            "base_records": len(base),
            "delta_records": len(delta),
            "shards": SHARDS,
            "max_records_in_memory": MAX_RECORDS_IN_MEMORY,
            "k": PARAMS.k,
            "m": PARAMS.m,
        },
        "store_build_seconds": build_seconds,
        "warm_delta_seconds": warm_seconds,
        "cold_full_run_seconds": cold_seconds,
        "delta_speedup_factor": speedup,
        "delta_speedup_budget": MIN_DELTA_SPEEDUP,
        "delta_speedup_ok": speedup >= MIN_DELTA_SPEEDUP,
        "outputs_identical": identical,
        "audit_ok": True,  # asserted above
        "warm_phases": report.phase_timings(),
        "counters": report.counters(),
    }


@pytest.mark.benchmark(group="incremental")
def test_bench_warm_delta_vs_cold_recompute(benchmark, tmp_path):
    """Measure the warm-delta speedup; gate identity + speedup as booleans."""
    base = list(_base_dataset())
    delta = list(_delta_dataset())
    payload = run_once(benchmark, _bench_incremental, base, delta, tmp_path)
    assert payload["outputs_identical"]
    assert payload["delta_speedup_ok"], (
        f"warm delta is only {payload['delta_speedup_factor']:.2f}x faster "
        f"than the cold recompute, budget is {MIN_DELTA_SPEEDUP}x"
    )
    write_bench_json("incremental", payload)
    emit(
        "Incremental store: warm 1% delta vs cold recompute "
        f"({BASE_RECORDS} + {DELTA_RECORDS} QUEST records)",
        [
            {
                "configuration": "store build (one-time)",
                "seconds": round(payload["store_build_seconds"], 3),
            },
            {
                "configuration": "warm 1% append delta",
                "seconds": round(payload["warm_delta_seconds"], 3),
            },
            {
                "configuration": "cold full recompute",
                "seconds": round(payload["cold_full_run_seconds"], 3),
            },
        ],
        "not a paper figure: economics of the incremental store "
        f"(delta {payload['delta_speedup_factor']:.1f}x faster than cold; "
        f"{payload['counters']['windows_reused']} windows reused, "
        f"{payload['counters']['windows_recomputed']} recomputed)",
    )

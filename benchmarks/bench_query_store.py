"""Indexed publication-store queries vs in-memory scans at 100k records.

The publication store exists so repeated analyst queries cost index
lookups instead of a pass over every published chunk.  This benchmark
prices that claim at the paper's scale: 100k QUEST records anonymized by
the sharded pipeline, then the same repeated itemset-support workload
(singles, pairs and triples over the most frequent published terms)
answered twice -- once by :class:`~repro.pubstore.PublicationStore`'s
inverted indexes, once by the in-memory oracle scanning the chunk
dataset.  Two booleans are gated by the CI perf gate:

* ``answers_identical`` -- every indexed answer (supports, top terms,
  frequent pairs) equals the scan answer bit-for-bit;
* ``indexed_speedup_ok`` -- the indexed workload is at least
  ``MIN_INDEXED_SPEEDUP`` (5x) faster than the scans.

Timings land in ``BENCH_query_store.json`` for the CI perf gate.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.engine import AnonymizationParams
from repro.datasets.quest import generate_quest
from repro.pubstore import PublicationStore, QueryEngine
from repro.stream import ShardedPipeline, StreamParams

from benchmarks.conftest import emit, run_once, write_bench_json

PARAMS = AnonymizationParams(k=5, m=2, max_cluster_size=30)

SHARDS = 4
MAX_RECORDS_IN_MEMORY = 2500

#: Corpus size: the paper's 100k-record scale.
BASE_RECORDS = 100_000

#: Repeated itemset-support probes per backend (the analyst workload).
SUPPORT_QUERIES = 200

#: The indexed workload must beat the scans by at least this factor;
#: ``indexed_speedup_ok`` is gated as a boolean by the CI perf gate.
MIN_INDEXED_SPEEDUP = 5.0


def _base_dataset():
    return generate_quest(
        num_transactions=BASE_RECORDS,
        domain_size=1500,
        avg_transaction_size=6.0,
        seed=0,
    )


def _probe_itemsets(engine) -> list:
    """A deterministic mixed workload over the most frequent terms."""
    terms = [term for term, _ in engine.top_terms(50)]
    rng = random.Random(7)
    probes = [[rng.choice(terms)] for _ in range(SUPPORT_QUERIES // 4)]
    probes += [rng.sample(terms, 2) for _ in range(SUPPORT_QUERIES // 2)]
    probes += [rng.sample(terms, 3) for _ in range(SUPPORT_QUERIES // 4)]
    return probes


def _run_support_workload(engine, probes) -> tuple:
    start = time.perf_counter()
    answers = [engine.cooccurrence_count(probe) for probe in probes]
    return time.perf_counter() - start, answers


def _bench_query_store(published, tmp_path) -> dict:
    # -- build the indexed store (one-time cost, priced separately) ------
    start = time.perf_counter()
    store = PublicationStore.from_publication(published, tmp_path / "pubstore")
    build_seconds = time.perf_counter() - start

    indexed = QueryEngine(store)
    scan = QueryEngine(published)
    # Warm both backends outside the timed loops: the scan path builds
    # its chunk dataset once, which is amortized across an analyst
    # session either way.
    probes = _probe_itemsets(indexed)
    scan.cooccurrence_count(probes[0])
    indexed.cooccurrence_count(probes[0])

    indexed_seconds, indexed_answers = _run_support_workload(indexed, probes)
    scan_seconds, scan_answers = _run_support_workload(scan, probes)

    identical = (
        indexed_answers == scan_answers
        and indexed.top_terms(25) == scan.top_terms(25)
        and indexed.frequent_pairs(BASE_RECORDS // 100)
        == scan.frequent_pairs(BASE_RECORDS // 100)
    )
    speedup = scan_seconds / indexed_seconds
    store.close()

    return {
        "workload": {
            "records": BASE_RECORDS,
            "support_queries": len(probes),
            "shards": SHARDS,
            "max_records_in_memory": MAX_RECORDS_IN_MEMORY,
            "k": PARAMS.k,
            "m": PARAMS.m,
        },
        "store_build_seconds": build_seconds,
        "indexed_queries_seconds": indexed_seconds,
        "scan_queries_seconds": scan_seconds,
        "indexed_speedup_factor": speedup,
        "indexed_speedup_budget": MIN_INDEXED_SPEEDUP,
        "indexed_speedup_ok": speedup >= MIN_INDEXED_SPEEDUP,
        "answers_identical": identical,
        "counters": {
            "support_queries": len(probes),
            "published_records": BASE_RECORDS,
        },
    }


@pytest.mark.benchmark(group="query_store")
def test_bench_indexed_queries_vs_scans(benchmark, tmp_path):
    """Measure the indexed-query speedup; gate identity + speedup as booleans."""
    published = ShardedPipeline(
        PARAMS,
        StreamParams(shards=SHARDS, max_records_in_memory=MAX_RECORDS_IN_MEMORY),
    ).run(list(_base_dataset()))
    payload = run_once(benchmark, _bench_query_store, published, tmp_path)
    assert payload["answers_identical"]
    assert payload["indexed_speedup_ok"], (
        f"indexed queries are only {payload['indexed_speedup_factor']:.2f}x "
        f"faster than scans, budget is {MIN_INDEXED_SPEEDUP}x"
    )
    write_bench_json("query_store", payload)
    emit(
        "Publication store: indexed queries vs in-memory scans "
        f"({BASE_RECORDS} QUEST records, {payload['workload']['support_queries']} "
        "itemset-support probes)",
        [
            {
                "configuration": "store build (one-time)",
                "seconds": round(payload["store_build_seconds"], 3),
            },
            {
                "configuration": "indexed support workload",
                "seconds": round(payload["indexed_queries_seconds"], 3),
            },
            {
                "configuration": "scan support workload",
                "seconds": round(payload["scan_queries_seconds"], 3),
            },
        ],
        "not a paper figure: economics of the indexed publication store "
        f"(queries {payload['indexed_speedup_factor']:.1f}x faster than scans, "
        "answers bit-for-bit identical)",
    )
